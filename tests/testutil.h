// Shared helpers for the vdbg test suite.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "asm/assembler.h"
#include "cpu/cpu.h"
#include "cpu/phys_mem.h"
#include "hw/machine.h"

namespace vdbg::test {

/// Port bus that records accesses and serves scripted read values.
class ScriptedIoBus final : public cpu::IoBus {
 public:
  struct Access {
    bool write;
    u16 port;
    u32 value;
  };

  u32 io_read(u16 port) override {
    u32 v = read_value_;
    auto it = port_values_.find(port);
    if (it != port_values_.end()) v = it->second;
    log.push_back({false, port, v});
    return v;
  }
  void io_write(u16 port, u32 value) override {
    log.push_back({true, port, value});
  }

  void set_read_value(u32 v) { read_value_ = v; }
  void set_port_value(u16 port, u32 v) { port_values_[port] = v; }

  std::vector<Access> log;

 private:
  u32 read_value_ = 0;
  std::map<u16, u32> port_values_;
};

/// A bare CPU harness: 1 MiB flat memory, scripted I/O, no interrupts.
/// Assembles `body` at 0x1000 and provides run helpers.
class CpuHarness {
 public:
  CpuHarness() : mem(1024 * 1024), cpu(mem, io, nullptr) {}

  /// Assembles with `emit`, loads, points pc at the image base.
  void load(const std::function<void(vasm::Assembler&)>& emit,
            u32 base = 0x1000) {
    vasm::Assembler a(base);
    emit(a);
    prog = a.finalize();
    prog.load(mem);
    cpu.state().pc = base;
  }

  /// Steps up to `max_instructions`; stops early on halt/shutdown.
  cpu::RunExit run(u64 max_instructions = 10000) {
    cpu::RunExit r = cpu::RunExit::kBudget;
    for (u64 i = 0; i < max_instructions; ++i) {
      r = cpu.step_one();
      if (r != cpu::RunExit::kBudget) break;
    }
    return r;
  }

  u32 reg(cpu::Reg r) const { return cpu.state().regs[r]; }

  cpu::PhysMem mem;
  ScriptedIoBus io;
  cpu::Cpu cpu;
  vasm::Program prog;
};

/// Emits per-vector trap stubs + a gate table labelled "idt", and a common
/// handler that records the event at fixed addresses then halts:
///   0x500 <- vector, 0x504 <- errcode, 0x508 <- saved pc, 0x50c <- saved
///   psw, 0x510 <- saved sp, 0x514 <- marker 0x7e57
/// The test body must `movi r0, l("idt"); lidt r0, count` itself.
inline void emit_test_idt(vasm::Assembler& a, u32 count = 64,
                          u8 syscall_dpl_vector = 0xff) {
  using namespace vasm;
  using cpu::kR0;
  using cpu::kR6;
  using cpu::kSp;
  for (u32 v = 0; v < count; ++v) {
    a.label("stub" + std::to_string(v));
    a.movi(kR6, u32{v});
    a.jmp(l("trap_common"));
  }
  a.label("trap_common");
  a.movi(kR0, u32{0x500});
  a.st32(kR0, 0, kR6);
  a.ld32(kR6, kSp, 0);
  a.st32(kR0, 4, kR6);
  a.ld32(kR6, kSp, 4);
  a.st32(kR0, 8, kR6);
  a.ld32(kR6, kSp, 8);
  a.st32(kR0, 12, kR6);
  a.ld32(kR6, kSp, 12);
  a.st32(kR0, 16, kR6);
  a.movi(kR6, u32{0x7e57});
  a.st32(kR0, 20, kR6);
  a.hlt();
  a.align(8);
  a.label("idt");
  for (u32 v = 0; v < count; ++v) {
    const u8 dpl = (v == syscall_dpl_vector) ? 3 : 0;
    a.data_ref(l("stub" + std::to_string(v)));
    a.data32(cpu::Gate{0, true, dpl, 0}.pack_flags());
  }
}

struct TrapRecord {
  u32 vector, err, pc, psw, sp, marker;
};
inline TrapRecord read_trap_record(const cpu::PhysMem& mem) {
  return {mem.read32(0x500), mem.read32(0x504), mem.read32(0x508),
          mem.read32(0x50c), mem.read32(0x510), mem.read32(0x514)};
}

}  // namespace vdbg::test

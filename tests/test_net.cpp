// UDP/IPv4 codec and packet-sink tests, including random round-trip
// properties and corruption detection.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/packet_sink.h"
#include "net/udp.h"

namespace vdbg::test {
namespace {

using namespace net;

FlowSpec flow() {
  FlowSpec f;
  f.src_mac = {0x02, 1, 2, 3, 4, 5};
  f.dst_mac = {0x02, 9, 8, 7, 6, 5};
  f.src_ip = 0xc0a80102;  // 192.168.1.2
  f.dst_ip = 0xc0a80101;
  f.src_port = 5004;
  f.dst_port = 6000;
  return f;
}

TEST(UdpCodec, BuildParseRoundTrip) {
  std::vector<u8> payload;
  for (int i = 0; i < 100; ++i) payload.push_back(static_cast<u8>(i));
  const auto frame = build_frame(flow(), payload);
  EXPECT_EQ(frame.size(), kAllHeaderBytes + payload.size());

  const auto p = parse_frame(frame);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->src_ip, flow().src_ip);
  EXPECT_EQ(p->dst_ip, flow().dst_ip);
  EXPECT_EQ(p->src_port, flow().src_port);
  EXPECT_EQ(p->dst_port, flow().dst_port);
  EXPECT_EQ(p->src_mac, flow().src_mac);
  EXPECT_TRUE(p->ip_checksum_ok);
  EXPECT_TRUE(p->udp_checksum_ok);
  EXPECT_TRUE(p->udp_checksum_present);
  ASSERT_EQ(p->payload.size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), p->payload.begin()));
}

TEST(UdpCodec, RandomPayloadProperty) {
  Rng rng(31337);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<u8> payload(rng.between(0, 1472));
    for (auto& b : payload) b = static_cast<u8>(rng.next_u32());
    const auto frame = build_frame(flow(), payload);
    const auto p = parse_frame(frame);
    ASSERT_TRUE(p.has_value()) << "trial " << trial;
    EXPECT_TRUE(p->ip_checksum_ok);
    EXPECT_TRUE(p->udp_checksum_ok);
    EXPECT_EQ(p->payload.size(), payload.size());
  }
}

TEST(UdpCodec, PayloadCorruptionBreaksUdpChecksumOnly) {
  std::vector<u8> payload(200, 0x42);
  auto frame = build_frame(flow(), payload);
  frame[kAllHeaderBytes + 50] ^= 0x01;
  const auto p = parse_frame(frame);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->ip_checksum_ok);
  EXPECT_FALSE(p->udp_checksum_ok);
}

TEST(UdpCodec, HeaderCorruptionBreaksIpChecksum) {
  auto frame = build_frame(flow(), std::vector<u8>(16, 1));
  frame[kEthHeaderBytes + 8] ^= 0xff;  // TTL
  const auto p = parse_frame(frame);
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->ip_checksum_ok);
}

TEST(UdpCodec, ZeroChecksumMeansUnchecked) {
  auto frame = build_frame(flow(), std::vector<u8>(16, 1));
  frame[kEthHeaderBytes + kIpHeaderBytes + 6] = 0;
  frame[kEthHeaderBytes + kIpHeaderBytes + 7] = 0;
  const auto p = parse_frame(frame);
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->udp_checksum_present);
  EXPECT_TRUE(p->udp_checksum_ok);
}

TEST(UdpCodec, RejectsStructurallyBrokenFrames) {
  EXPECT_FALSE(parse_frame(std::vector<u8>(10)).has_value());  // short
  auto frame = build_frame(flow(), std::vector<u8>(16, 1));
  auto bad_ethertype = frame;
  bad_ethertype[12] = 0x86;  // not IPv4
  EXPECT_FALSE(parse_frame(bad_ethertype).has_value());
  auto bad_proto = frame;
  bad_proto[kEthHeaderBytes + 9] = 6;  // TCP
  EXPECT_FALSE(parse_frame(bad_proto).has_value());
  auto truncated = frame;
  truncated.resize(frame.size() - 4);  // shorter than ip_total_len
  EXPECT_FALSE(parse_frame(truncated).has_value());
  auto bad_len = frame;
  bad_len[kEthHeaderBytes + 2] = 0;  // ip_total_len < headers
  bad_len[kEthHeaderBytes + 3] = 10;
  EXPECT_FALSE(parse_frame(bad_len).has_value());
}

TEST(UdpCodec, TemplateMatchesBuildFrameHeaders) {
  const auto tmpl = build_header_template(flow());
  const auto frame = build_frame(flow(), std::vector<u8>(32, 7));
  ASSERT_EQ(tmpl.size(), kAllHeaderBytes);
  // Everything except the per-packet fields (lengths, checksums) matches.
  for (u32 i = 0; i < kAllHeaderBytes; ++i) {
    const bool per_packet =
        (i >= 16 && i <= 17) ||  // ip total length
        (i >= 24 && i <= 25) ||  // ip checksum
        (i >= 38 && i <= 41);    // udp length + checksum
    if (!per_packet) {
      EXPECT_EQ(tmpl[i], frame[i]) << "offset " << i;
    }
  }
}

TEST(UdpCodec, PseudoHeaderPartialSumConsistent) {
  // fold(partial + udp_len terms + header/payload sum) must equal the
  // checksum build_frame computes; verify via the verification property.
  const auto frame = build_frame(flow(), std::vector<u8>(64, 0x5a));
  const auto p = parse_frame(frame);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->udp_checksum_ok);
  EXPECT_GT(pseudo_header_partial_sum(flow()), 0u);
}

// -------------------------------------------------------------- sink -----
struct SinkRig {
  SinkRig() { f = flow(); }
  std::vector<u8> seq_frame(u32 seq, u32 body_bytes = 32) {
    std::vector<u8> payload(4 + body_bytes, 0xcd);
    payload[0] = static_cast<u8>(seq);
    payload[1] = static_cast<u8>(seq >> 8);
    payload[2] = static_cast<u8>(seq >> 16);
    payload[3] = static_cast<u8>(seq >> 24);
    return build_frame(f, payload);
  }
  FlowSpec f;
  PacketSink sink;
};

TEST(PacketSink, CountsInOrderFrames) {
  SinkRig rig;
  for (u32 s = 0; s < 5; ++s) rig.sink.on_frame(rig.seq_frame(s), 0);
  EXPECT_EQ(rig.sink.frames(), 5u);
  EXPECT_EQ(rig.sink.sequence_gaps(), 0u);
  EXPECT_EQ(rig.sink.out_of_order(), 0u);
  EXPECT_EQ(rig.sink.last_sequence(), 4u);
}

TEST(PacketSink, DetectsGapsAndReordering) {
  SinkRig rig;
  rig.sink.on_frame(rig.seq_frame(0), 0);
  rig.sink.on_frame(rig.seq_frame(2), 0);  // gap
  rig.sink.on_frame(rig.seq_frame(1), 0);  // late
  EXPECT_EQ(rig.sink.sequence_gaps(), 1u);
  EXPECT_EQ(rig.sink.out_of_order(), 1u);
}

TEST(PacketSink, ChecksumErrorsCounted) {
  SinkRig rig;
  auto frame = rig.seq_frame(0);
  frame.back() ^= 1;
  rig.sink.on_frame(frame, 0);
  EXPECT_EQ(rig.sink.frames(), 0u);
  EXPECT_EQ(rig.sink.checksum_errors(), 1u);
}

TEST(PacketSink, ValidatorFlagsContentErrors) {
  SinkRig rig;
  rig.sink.set_payload_validator(
      [](u32, std::span<const u8> body) { return body.empty(); });
  rig.sink.on_frame(rig.seq_frame(0, 8), 0);
  EXPECT_EQ(rig.sink.content_errors(), 1u);
}

TEST(PacketSink, WindowGoodputCountsBodyBytesOnly) {
  SinkRig rig;
  rig.sink.begin_window(0);
  rig.sink.on_frame(rig.seq_frame(0, 1000), 0);
  EXPECT_EQ(rig.sink.window_bytes(), 1000u);  // excludes the seq word
  // 1000 bytes over 1.26e6 cycles (1 ms) = 8 Mbps.
  EXPECT_NEAR(rig.sink.window_goodput_mbps(1'260'000), 8.0, 1e-6);
}

TEST(PacketSink, CaptureLimitKeepsFirstPayloads) {
  SinkRig rig;
  rig.sink.set_capture_limit(2);
  for (u32 s = 0; s < 5; ++s) rig.sink.on_frame(rig.seq_frame(s), 0);
  EXPECT_EQ(rig.sink.captured().size(), 2u);
}

TEST(PacketSink, InterArrivalJitterPercentiles) {
  SinkRig rig;
  // Arrivals at 0, 100, 200, 1000 cycles: gaps {100, 100, 800}.
  rig.sink.on_frame(rig.seq_frame(0), 0);
  rig.sink.on_frame(rig.seq_frame(1), 100);
  rig.sink.on_frame(rig.seq_frame(2), 200);
  rig.sink.on_frame(rig.seq_frame(3), 1000);
  EXPECT_EQ(rig.sink.interarrival().count(), 3u);
  EXPECT_NEAR(rig.sink.interarrival().percentile(0), 100.0, 1e-9);
  EXPECT_NEAR(rig.sink.interarrival().percentile(100), 800.0, 1e-9);
  // 100 cycles at 1.26 GHz = 0.0794 us.
  EXPECT_NEAR(rig.sink.interarrival_us(0), 100.0 / 1260.0, 1e-3);
  // Invalid frames do not pollute the distribution.
  auto bad = rig.seq_frame(4);
  bad.back() ^= 1;
  rig.sink.on_frame(bad, 2000);
  EXPECT_EQ(rig.sink.interarrival().count(), 3u);
}

TEST(PacketSink, RawMode) {
  SinkRig rig;
  rig.sink.set_expect_sequence(false);
  rig.sink.on_frame(build_frame(rig.f, std::vector<u8>(10, 1)), 0);
  EXPECT_EQ(rig.sink.frames(), 1u);
  EXPECT_EQ(rig.sink.sequence_gaps(), 0u);
}

}  // namespace
}  // namespace vdbg::test

// End-to-end remote-debugging tests: host debugger <-> serial link <->
// monitor stub <-> guest, while the guest streams I/O — the paper's core
// use case (debug an OS *without* stopping its high-throughput I/O from
// working, and survive its crashes).
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "common/units.h"
#include "debug/remote_debugger.h"
#include "guest/layout.h"
#include "guest/minitactix.h"
#include "harness/platform.h"
#include "vmm/stub.h"

namespace vdbg::test {
namespace {

using debug::RemoteDebugger;
using guest::RunConfig;
using harness::Platform;
using harness::PlatformKind;
using StopKind = RemoteDebugger::StopKind;

struct DebugRig {
  explicit DebugRig(RunConfig rc = RunConfig()) {
    platform = std::make_unique<Platform>(PlatformKind::kLvmm);
    platform->prepare(rc);
    stub = std::make_unique<vmm::DebugStub>(*platform->monitor(),
                                            platform->machine().uart());
    stub->attach();
    dbg = std::make_unique<RemoteDebugger>(platform->machine());
    dbg->add_symbols(platform->image().kernel);
    dbg->add_symbols(platform->image().app);
  }

  std::unique_ptr<Platform> platform;
  std::unique_ptr<vmm::DebugStub> stub;
  std::unique_ptr<RemoteDebugger> dbg;
};

TEST(DebugSession, ConnectInterruptInspectResume) {
  DebugRig rig(RunConfig::for_rate_mbps(40.0));
  ASSERT_TRUE(rig.dbg->connect());

  // Let the guest boot and stream a little.
  rig.platform->machine().run_for(seconds_to_cycles(0.03));
  ASSERT_EQ(rig.platform->mailbox().magic, guest::Mailbox::kMagicValue);

  // Break in asynchronously.
  EXPECT_EQ(rig.dbg->interrupt(), StopKind::kBreak);
  EXPECT_TRUE(rig.stub->target_stopped());

  const auto regs = rig.dbg->read_registers();
  ASSERT_TRUE(regs.has_value());
  EXPECT_NE(regs->pc, 0u);

  // While frozen, guest counters must not advance (CPU stopped) ...
  const auto before = rig.platform->mailbox();
  rig.platform->machine().run_for(seconds_to_cycles(0.01));
  const auto after = rig.platform->mailbox();
  EXPECT_EQ(before.segments_sent, after.segments_sent);

  // ... and resuming picks the stream back up.
  EXPECT_EQ(rig.dbg->continue_and_wait(seconds_to_cycles(0.001)),
            StopKind::kTimeout);  // no stop event: it simply runs
  rig.platform->machine().run_for(seconds_to_cycles(0.03));
  EXPECT_GT(rig.platform->mailbox().segments_sent, after.segments_sent);
}

TEST(DebugSession, BreakpointInNicDriverHitsDuringStreaming) {
  DebugRig rig(RunConfig::for_rate_mbps(40.0));
  ASSERT_TRUE(rig.dbg->connect());
  rig.platform->machine().run_for(seconds_to_cycles(0.03));

  const auto isr_nic = rig.dbg->lookup("isr_nic");
  ASSERT_TRUE(isr_nic.has_value());
  ASSERT_TRUE(rig.dbg->set_breakpoint(*isr_nic));

  // The NIC completes a frame within a few ms at 40 Mbps.
  const auto stop = rig.dbg->continue_and_wait(seconds_to_cycles(0.05));
  // 'c' while running is a no-op command, so the stop arrives as a packet.
  ASSERT_EQ(stop, StopKind::kBreak);
  const auto regs = rig.dbg->read_registers();
  ASSERT_TRUE(regs.has_value());
  EXPECT_EQ(regs->pc, *isr_nic);
  EXPECT_EQ(rig.dbg->describe(regs->pc), "isr_nic");

  // Hit it again: transparent step-over must re-arm the breakpoint.
  ASSERT_EQ(rig.dbg->continue_and_wait(seconds_to_cycles(0.05)),
            StopKind::kBreak);
  EXPECT_EQ(rig.dbg->read_registers()->pc, *isr_nic);

  // Remove it and stream on cleanly.
  ASSERT_TRUE(rig.dbg->clear_breakpoint(*isr_nic));
  EXPECT_EQ(rig.dbg->continue_and_wait(seconds_to_cycles(0.002)),
            StopKind::kTimeout);
  rig.platform->machine().run_for(seconds_to_cycles(0.02));
  EXPECT_EQ(rig.platform->sink().sequence_gaps(), 0u);
  EXPECT_EQ(rig.platform->sink().checksum_errors(), 0u);
  EXPECT_EQ(rig.platform->mailbox().last_error, 0u);
}

TEST(DebugSession, SingleStepAdvancesOneInstruction) {
  DebugRig rig(RunConfig::for_rate_mbps(40.0));
  ASSERT_TRUE(rig.dbg->connect());
  rig.platform->machine().run_for(seconds_to_cycles(0.03));
  ASSERT_EQ(rig.dbg->interrupt(), StopKind::kBreak);

  const auto before = rig.dbg->read_registers();
  ASSERT_TRUE(before.has_value());
  ASSERT_EQ(rig.dbg->step(), StopKind::kBreak);
  const auto after = rig.dbg->read_registers();
  ASSERT_TRUE(after.has_value());
  EXPECT_NE(after->pc, before->pc);
}

TEST(DebugSession, MemoryReadWriteRoundTripAndDisassembly) {
  DebugRig rig;
  ASSERT_TRUE(rig.dbg->connect());
  rig.platform->machine().run_for(seconds_to_cycles(0.02));
  ASSERT_EQ(rig.dbg->interrupt(), StopKind::kBreak);

  const u32 scratch = 0x00700000;  // free guest RAM
  std::vector<u8> pattern(64);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<u8>(i * 7 + 1);
  }
  ASSERT_TRUE(rig.dbg->write_memory(scratch, pattern));
  const auto back = rig.dbg->read_memory(scratch, 64);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pattern);

  // Disassemble the guest entry: first instruction sets up the stack.
  const auto entry = rig.dbg->lookup("entry");
  ASSERT_TRUE(entry.has_value());
  const auto lines = rig.dbg->disassemble(*entry, 2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("movi sp"), std::string::npos);
}

TEST(DebugSession, BreakpointSitesReadBackOriginalBytes) {
  DebugRig rig(RunConfig::for_rate_mbps(40.0));
  ASSERT_TRUE(rig.dbg->connect());
  rig.platform->machine().run_for(seconds_to_cycles(0.02));

  const auto isr = rig.dbg->lookup("isr_timer").value();
  const auto orig = rig.dbg->read_memory(isr, 8).value();
  ASSERT_TRUE(rig.dbg->set_breakpoint(isr));
  // Raw guest memory now holds BRK...
  u8 raw = 0;
  rig.platform->monitor()->guest_read(isr, {&raw, 1});
  EXPECT_EQ(raw, static_cast<u8>(cpu::Opcode::kBrk));
  // ...but the debugger's view is transparent.
  EXPECT_EQ(rig.dbg->read_memory(isr, 8).value(), orig);
  ASSERT_TRUE(rig.dbg->clear_breakpoint(isr));
  rig.platform->monitor()->guest_read(isr, {&raw, 1});
  EXPECT_EQ(raw, orig[0]);
}

TEST(DebugSession, RegisterWritesTakeEffect) {
  DebugRig rig;
  ASSERT_TRUE(rig.dbg->connect());
  rig.platform->machine().run_for(seconds_to_cycles(0.02));
  ASSERT_EQ(rig.dbg->interrupt(), StopKind::kBreak);
  ASSERT_TRUE(rig.dbg->write_register(3, 0xfeedface));
  EXPECT_EQ(rig.dbg->read_registers()->r[3], 0xfeedfaceu);
}

TEST(DebugSession, GuestCrashIsReportedAndPostMortemWorks) {
  DebugRig rig;
  ASSERT_TRUE(rig.dbg->connect());
  rig.platform->machine().run_for(seconds_to_cycles(0.01));

  // Destroy the guest IDT -> next injection virtually triple-faults.
  const auto idt = rig.platform->image().kernel.symbol("idt").value();
  for (u32 i = 0; i < guest::kIdtEntries * 8; i += 4) {
    rig.platform->machine().mem().write32(idt + i, 0);
  }
  rig.platform->machine().run_for(seconds_to_cycles(0.01));
  ASSERT_TRUE(rig.platform->monitor()->vcpu().crashed);

  // The stub (and the whole debug environment) is still operational:
  EXPECT_TRUE(rig.dbg->target_crashed());
  EXPECT_TRUE(rig.dbg->monitor_intact());
  // Post-mortem inspection of the dead guest works.
  const auto regs = rig.dbg->read_registers();
  ASSERT_TRUE(regs.has_value());
  const auto mb = rig.dbg->read_memory(guest::kMailboxBase, 16);
  ASSERT_TRUE(mb.has_value());
  EXPECT_EQ((*mb)[0], 'i');  // "Mini" magic, little-endian
}

TEST(DebugSession, LargeMemoryTransfersAreChunkedAcrossPackets) {
  // 16 KiB is far beyond both the stub's 0x1000-byte per-command cap and
  // the debugger's 0x800-byte chunk size: the round trip only works if
  // both read_memory and write_memory split into multiple transactions.
  DebugRig rig;
  ASSERT_TRUE(rig.dbg->connect());
  rig.platform->machine().run_for(seconds_to_cycles(0.02));
  ASSERT_EQ(rig.dbg->interrupt(), StopKind::kBreak);

  const u32 scratch = 0x00700000;  // free guest RAM
  std::vector<u8> pattern(16 * 1024);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<u8>((i * 31 + (i >> 8)) & 0xff);
  }
  ASSERT_TRUE(rig.dbg->write_memory(scratch, pattern));
  const auto back = rig.dbg->read_memory(scratch, pattern.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pattern);

  // Spot-check a chunk boundary actually landed in guest RAM.
  u8 raw = 0;
  rig.platform->monitor()->guest_read(scratch + 0x800, {&raw, 1});
  EXPECT_EQ(raw, pattern[0x800]);
}

TEST(DebugSession, ExitStatsQueryReportsPerKindCounters) {
  DebugRig rig(RunConfig::for_rate_mbps(40.0));
  ASSERT_TRUE(rig.dbg->connect());
  rig.platform->machine().run_for(seconds_to_cycles(0.05));
  ASSERT_EQ(rig.dbg->interrupt(), StopKind::kBreak);

  const auto stats = rig.dbg->exit_stats();
  ASSERT_TRUE(stats.has_value());
  ASSERT_EQ(stats->size(), vmm::kNumExitKinds);
  u64 irq_count = 0, softint_count = 0;
  for (const auto& s : *stats) {
    if (s.kind == "irq") irq_count = s.count;
    if (s.kind == "softint") softint_count = s.count;
    if (s.count > 0) {
      EXPECT_GT(s.cycles, 0u) << s.kind;
    }
  }
  // A streaming guest takes timer/NIC interrupts and issues syscalls.
  EXPECT_GT(irq_count, 0u);
  EXPECT_GT(softint_count, 0u);

  // The wire stats agree with the monitor's own counters.
  const auto& es = rig.platform->monitor()->exit_stats();
  for (const auto& s : *stats) {
    for (unsigned k = 0; k < vmm::kNumExitKinds; ++k) {
      if (s.kind == vmm::exit_kind_name(static_cast<vmm::ExitKind>(k))) {
        EXPECT_EQ(s.count, es.by_kind[k].count) << s.kind;
      }
    }
  }
}

TEST(DebugSession, StreamSurvivesRepeatedBreakInsWithIntegrity) {
  RunConfig rc = RunConfig::for_rate_mbps(40.0);
  rc.stop_after_segments = 200;
  DebugRig rig(rc);
  rig.platform->sink().set_payload_validator(guest::make_stream_validator(rc));
  ASSERT_TRUE(rig.dbg->connect());

  for (int i = 0; i < 5; ++i) {
    rig.platform->machine().run_for(seconds_to_cycles(0.01));
    if (rig.platform->machine().guest_exit_code()) break;
    if (rig.dbg->interrupt() != StopKind::kBreak) break;
    rig.dbg->continue_and_wait(seconds_to_cycles(0.0005));
  }
  rig.platform->machine().run_until_stopped(seconds_to_cycles(2.0));
  rig.platform->machine().clear_guest_exit();
  rig.platform->machine().run_for(seconds_to_cycles(0.002));

  EXPECT_GE(rig.platform->sink().frames(), 200u);
  EXPECT_EQ(rig.platform->sink().sequence_gaps(), 0u);
  EXPECT_EQ(rig.platform->sink().content_errors(), 0u);
  EXPECT_EQ(rig.platform->sink().checksum_errors(), 0u);
}

}  // namespace
}  // namespace vdbg::test

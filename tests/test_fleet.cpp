// Fleet sharding tests (DESIGN.md §10): per-machine determinism under
// thread placement, metrics rollup aggregation, the health monitor's
// sick-machine latching + flight-recorder quarantine, the multiplexed RSP
// server's per-machine session routing, and machine-tagged logging.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/units.h"
#include "fleet/fleet.h"
#include "fleet/server.h"
#include "guest/minitactix.h"
#include "harness/platform.h"

namespace vdbg::test {
namespace {

namespace fs = std::filesystem;
using guest::RunConfig;
using harness::Platform;
using harness::PlatformKind;
using MStop = hw::Machine::StopReason;

// ------------------------------------------------------------ determinism --

// The fleet contract: a machine's simulated timeline does not depend on
// thread placement or slice pumping. Two fleet machines sharded across two
// workers must finish bit-identical to each other AND to the same guest
// run solo through harness::Platform — every replay-exact metric and every
// guest mailbox field.
TEST(FleetDeterminism, TwoShardedMachinesMatchSoloRunBitForBit) {
  const RunConfig rc = RunConfig::for_rate_mbps(40.0);
  const Cycles budget = seconds_to_cycles(0.03);

  // Solo reference. Stub attach is a guest-visible UART register write, so
  // the solo run attaches one too (the fleet attaches by default).
  Platform solo(PlatformKind::kLvmm);
  solo.prepare(rc);
  ASSERT_NE(solo.unit().attach_stub(), nullptr);
  ASSERT_EQ(solo.machine().run_for(budget), MStop::kBudget);
  const auto want = solo.metrics().snapshot(/*replay_exact_only=*/true);
  const auto want_mb = solo.mailbox();
  ASSERT_GT(want.size(), 20u);
  ASSERT_GT(want_mb.segments_sent, 0u);

  fleet::FleetConfig fc;
  fc.machines = 2;
  fc.threads = 2;
  fc.kind = fleet::UnitKind::kLvmm;
  fc.run = rc;
  fc.budget = budget;
  fc.slice = 2'000'000;  // ~19 pump boundaries inside the budget
  fleet::Fleet fleet(fc);
  const auto statuses = fleet.run();

  ASSERT_EQ(statuses.size(), 2u);
  for (unsigned i = 0; i < 2; ++i) {
    SCOPED_TRACE("machine " + std::to_string(i));
    EXPECT_TRUE(statuses[i].done);
    EXPECT_FALSE(statuses[i].crashed);
    EXPECT_EQ(statuses[i].stop, MStop::kBudget);
    EXPECT_EQ(statuses[i].icount, solo.machine().cpu().stats().instructions);

    const auto got =
        fleet.unit(i).metrics().snapshot(/*replay_exact_only=*/true);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(got[k], want[k])
          << "metric '" << want[k].name << "' diverged from the solo run";
    }

    const auto mb = fleet.unit(i).mailbox();
    EXPECT_EQ(mb.ticks, want_mb.ticks);
    EXPECT_EQ(mb.segments_sent, want_mb.segments_sent);
    EXPECT_EQ(mb.bytes_sent, want_mb.bytes_sent);
    EXPECT_EQ(mb.disk_reads, want_mb.disk_reads);
    EXPECT_EQ(mb.seq, want_mb.seq);
    EXPECT_EQ(mb.syscalls, want_mb.syscalls);
    EXPECT_EQ(mb.underruns, want_mb.underruns);
  }
}

// ----------------------------------------------------------------- rollup --

TEST(FleetRollup, AggregatesPerMachineSnapshotsIntoTotals) {
  fleet::FleetConfig fc;
  fc.machines = 3;
  fc.threads = 2;
  fc.run = RunConfig::for_rate_mbps(40.0);
  fc.budget = seconds_to_cycles(0.01);
  fleet::Fleet fleet(fc);
  fleet.run();

  const auto roll = fleet.rollup();
  auto find = [&roll](const std::string& name) -> const MetricsRegistry::Sample* {
    for (const auto& s : roll) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };

  const auto* machines = find("fleet.rollup.machines");
  const auto* done = find("fleet.rollup.machines_done");
  const auto* crashed = find("fleet.rollup.machines_crashed");
  ASSERT_NE(machines, nullptr);
  ASSERT_NE(done, nullptr);
  ASSERT_NE(crashed, nullptr);
  EXPECT_EQ(machines->value, 3u);
  EXPECT_EQ(done->value, 3u);
  EXPECT_EQ(crashed->value, 0u);

  // Every machine contributes a prefixed copy of each metric, and the
  // fleet.total counter is their exact sum.
  u64 sum = 0;
  for (unsigned i = 0; i < 3; ++i) {
    const auto* per = find("fleet.machine" + std::to_string(i) +
                           ".cpu.core.instructions");
    ASSERT_NE(per, nullptr) << "machine " << i;
    EXPECT_GT(per->value, 0u);
    sum += per->value;
  }
  const auto* total = find("fleet.total.cpu.core.instructions");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->value, sum);
  EXPECT_TRUE(total->replay_exact);

  // The per-machine section covers the whole snapshot, and each metric has
  // exactly one fleet.total row.
  const std::size_t snap_size = fleet.published(0).size();
  ASSERT_GT(snap_size, 0u);
  std::size_t total_rows = 0;
  for (const auto& s : roll) {
    if (s.name.rfind("fleet.total.", 0) == 0) ++total_rows;
  }
  EXPECT_EQ(total_rows, snap_size);
  EXPECT_EQ(roll.size(), 4u + 3u * snap_size + snap_size);
}

// Before run() there are no published snapshots: the rollup degrades to
// exactly the four fleet.rollup.* counters (the "empty fleet" shape — no
// per-machine rows, no totals).
TEST(FleetRollup, EmptyFleetRollsUpToJustTheFleetCounters) {
  fleet::FleetConfig fc;
  fc.machines = 2;
  fc.threads = 1;
  fc.run = RunConfig::for_rate_mbps(40.0);
  fc.budget = seconds_to_cycles(0.005);
  fleet::Fleet fleet(fc);

  const auto roll = fleet.rollup();
  ASSERT_EQ(roll.size(), 4u);
  EXPECT_EQ(roll[0].name, "fleet.rollup.machines");
  EXPECT_EQ(roll[0].value, 2u);
  EXPECT_EQ(roll[1].name, "fleet.rollup.machines_done");
  EXPECT_EQ(roll[1].value, 0u);
  EXPECT_EQ(roll[2].name, "fleet.rollup.machines_crashed");
  EXPECT_EQ(roll[2].value, 0u);
  EXPECT_EQ(roll[3].name, "fleet.rollup.machines_sick");
  EXPECT_EQ(roll[3].value, 0u);
}

// A single-machine fleet's totals must be the machine's own values
// verbatim: a sum over one machine, a gauge "average" of one contributor,
// a histogram merge with nothing to merge.
TEST(FleetRollup, SingleMachineTotalsEqualTheMachineVerbatim) {
  fleet::FleetConfig fc;
  fc.machines = 1;
  fc.threads = 1;
  fc.run = RunConfig::for_rate_mbps(40.0);
  fc.budget = seconds_to_cycles(0.01);
  fleet::Fleet fleet(fc);
  fleet.run();

  const auto snap = fleet.published(0);
  ASSERT_FALSE(snap.empty());
  const auto roll = fleet.rollup();
  auto find = [&roll](const std::string& name) -> const MetricsRegistry::Sample* {
    for (const auto& s : roll) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };

  for (const auto& s : snap) {
    const auto* tot = find("fleet.total." + s.name);
    ASSERT_NE(tot, nullptr) << s.name;
    EXPECT_EQ(tot->kind, s.kind) << s.name;
    EXPECT_EQ(tot->replay_exact, s.replay_exact) << s.name;
    EXPECT_EQ(tot->value, s.value) << s.name;
    EXPECT_EQ(tot->number, s.number) << s.name;
    EXPECT_EQ(tot->buckets, s.buckets) << s.name;
  }
}

// Hand-computed merge rules over a real two-machine run: every histogram
// total is the element-wise bucket sum, every gauge total is the plain
// average of the per-machine values.
TEST(FleetRollup, HistogramsMergeElementWiseAndGaugesAverage) {
  fleet::FleetConfig fc;
  fc.machines = 2;
  fc.threads = 2;
  fc.run = RunConfig::for_rate_mbps(40.0);
  fc.budget = seconds_to_cycles(0.01);
  fleet::Fleet fleet(fc);
  fleet.run();

  const auto a = fleet.published(0);
  const auto b = fleet.published(1);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  const auto roll = fleet.rollup();
  auto find = [&roll](const std::string& name) -> const MetricsRegistry::Sample* {
    for (const auto& s : roll) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };

  std::size_t histograms = 0;
  std::size_t gauges = 0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a[k].name, b[k].name) << "registration order diverged";
    const auto* tot = find("fleet.total." + a[k].name);
    ASSERT_NE(tot, nullptr) << a[k].name;
    if (a[k].kind == MetricKind::kHistogram) {
      ++histograms;
      // Element-wise bucket sum, hand-computed from the two snapshots.
      std::vector<u32> want = a[k].buckets;
      if (want.size() < b[k].buckets.size()) {
        want.resize(b[k].buckets.size(), 0);
      }
      for (std::size_t i = 0; i < b[k].buckets.size(); ++i) {
        want[i] += b[k].buckets[i];
      }
      EXPECT_EQ(tot->buckets, want) << a[k].name;
    } else if (a[k].kind == MetricKind::kGauge) {
      ++gauges;
      EXPECT_DOUBLE_EQ(tot->number, (a[k].number + b[k].number) / 2.0)
          << a[k].name;
    }
  }
  // The guest workload under the monitor exercises both kinds; a zero here
  // means the registration sets changed and the test lost its teeth.
  EXPECT_GT(histograms, 0u);
  EXPECT_GT(gauges, 0u);
}

// ----------------------------------------------------------------- health --

TEST(FleetHealth, LatchesSickMachinesAndArmsFlightRecorders) {
  const fs::path dir = fs::temp_directory_path() / "vdbg_fleet_health";
  fs::remove_all(dir);
  fs::create_directories(dir);

  fleet::FleetConfig fc;
  fc.machines = 2;
  fc.threads = 1;
  fc.run = RunConfig::for_rate_mbps(40.0);
  fc.budget = seconds_to_cycles(0.01);
  // Absurd ceiling: any monitor overhead at all counts as pathological, so
  // every machine gets flagged on the first deterministic pass.
  fc.health.max_cycles_per_exit = 0.001;
  fc.health.min_exits = 1;
  fc.health.arm_flight_recorder = true;
  fc.health.flight_dir = dir.string();
  fleet::Fleet fleet(fc);
  fleet.run();

  const auto fresh = fleet.health().check_now();
  ASSERT_EQ(fresh.size(), 2u);
  for (const auto& e : fresh) {
    EXPECT_NE(e.reason.find("cycles/exit over ceiling"), std::string::npos)
        << e.reason;
  }
  EXPECT_TRUE(fleet.status(0).sick);
  EXPECT_TRUE(fleet.status(1).sick);

  // Quarantine: each sick machine has a FlightRecorder armed and an
  // evidence bundle already dumped into the policy directory.
  for (unsigned i = 0; i < 2; ++i) {
    auto* fr = fleet.unit(i).flight_recorder();
    ASSERT_NE(fr, nullptr) << "machine " << i;
    EXPECT_GE(fr->dumps(), 1u);
  }
  std::size_t bundles = 0;
  for (const auto& ent : fs::directory_iterator(dir)) {
    if (ent.path().filename().string().rfind("fleet-m", 0) == 0) ++bundles;
  }
  EXPECT_GE(bundles, 2u);

  // The latch is idempotent: a second pass flags nothing new, and the
  // event log keeps the originals.
  EXPECT_TRUE(fleet.health().check_now().empty());
  EXPECT_EQ(fleet.health().events().size(), 2u);

  fs::remove_all(dir);
}

TEST(FleetHealth, PollingThreadTicksWithoutFlaggingHealthyMachines) {
  fleet::FleetConfig fc;
  fc.machines = 2;
  fc.threads = 2;
  fc.run = RunConfig::for_rate_mbps(40.0);
  fc.budget = seconds_to_cycles(0.005);
  fc.health.poll_interval_ms = 1;  // thresholds all 0: nothing can be flagged
  fleet::Fleet fleet(fc);

  fleet.health().start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fleet.health().polls() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  fleet.run();
  fleet.health().stop();

  EXPECT_GT(fleet.health().polls(), 0u);
  EXPECT_TRUE(fleet.health().events().empty());
  EXPECT_FALSE(fleet.status(0).sick);
  EXPECT_FALSE(fleet.status(1).sick);
}

// ----------------------------------------------------------------- server --

/// Minimal blocking TCP client with a receive deadline.
struct TcpClient {
  int fd = -1;
  std::string buf;

  bool connect_to(u16 port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    timeval tv{};
    tv.tv_usec = 100'000;  // 100 ms recv timeout; callers loop on a deadline
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }

  bool send_all(std::string_view bytes) {
    while (!bytes.empty()) {
      const ssize_t n = ::send(fd, bytes.data(), bytes.size(), 0);
      if (n <= 0) return false;
      bytes.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
  }

  /// Reads until `token` appears in the accumulated buffer (or 30 s pass).
  bool read_until(const std::string& token) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (buf.find(token) == std::string::npos) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      char tmp[4096];
      const ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
      if (n > 0) buf.append(tmp, static_cast<std::size_t>(n));
      if (n == 0) return false;
    }
    return true;
  }

  ~TcpClient() {
    if (fd >= 0) ::close(fd);
  }
};

std::string rsp_frame(const std::string& payload) {
  unsigned sum = 0;
  for (char c : payload) sum += static_cast<u8>(c);
  char trailer[4];
  std::snprintf(trailer, sizeof trailer, "#%02x", sum & 0xffu);
  return "$" + payload + trailer;
}

TEST(FleetServer, RoutesSessionsToMachinesBehindOneListener) {
  fleet::FleetConfig fc;
  fc.machines = 2;
  fc.threads = 2;
  fc.run = RunConfig::for_rate_mbps(40.0);
  fc.budget = seconds_to_cycles(5.0);  // bounded below by request_stop_all
  fc.slice = 500'000;                  // tight pump for low attach latency
  fleet::Fleet fleet(fc);

  fleet::FleetServer server(fleet);
  if (!server.start()) {
    GTEST_SKIP() << "cannot bind a loopback TCP socket in this environment";
  }
  ASSERT_NE(server.port(), 0u);
  std::thread runner([&fleet] { fleet.run(); });

  // Session A: attach to machine 1, break in, query the icount.
  TcpClient a;
  bool ok = a.connect_to(server.port());
  std::string reply;
  if (ok) {
    ok = a.send_all("attach 1\n") && a.read_until("OK 1\n");
  }
  if (ok) {
    const std::string breakin(1, '\x03');
    ok = a.send_all(breakin + rsp_frame("qVdbg.Icount")) && a.read_until("#");
    // Skip past the stop packet to the query reply if both arrived framed.
    const auto q = a.buf.rfind('$');
    const auto h = a.buf.find('#', q == std::string::npos ? 0 : q);
    if (q != std::string::npos && h != std::string::npos) {
      reply = a.buf.substr(q + 1, h - q - 1);
    }
  }

  // Bad attach lines are rejected without touching any machine.
  TcpClient bad;
  bool bad_ok = bad.connect_to(server.port()) && bad.send_all("attach 99\n") &&
                bad.read_until("ERR");

  // A second session for an already-attached machine is refused.
  TcpClient busy;
  bool busy_ok = busy.connect_to(server.port()) &&
                 busy.send_all("attach 1\n") && busy.read_until("ERR");

  // Bound the wall clock before asserting anything.
  fleet.request_stop_all();
  runner.join();
  server.stop();

  EXPECT_TRUE(ok) << "session bytes so far: " << a.buf;
  EXPECT_FALSE(reply.empty());
  EXPECT_EQ(reply.find_first_not_of("0123456789abcdefABCDEF+$TS:;"),
            std::string::npos)
      << "unexpected reply payload: " << reply;
  EXPECT_TRUE(bad_ok);
  EXPECT_TRUE(busy_ok);
  EXPECT_GE(server.sessions_accepted(), 3u);
  EXPECT_GT(server.bytes_in(), 0u);
  EXPECT_GT(server.bytes_out(), 0u);
}

TEST(FleetServer, TopIsAOneShotFleetTableBeforeAttach) {
  fleet::FleetConfig fc;
  fc.machines = 2;
  fc.threads = 2;
  fc.run = RunConfig::for_rate_mbps(40.0);
  fc.budget = seconds_to_cycles(0.02);
  fc.slice = 500'000;
  fleet::Fleet fleet(fc);

  fleet::FleetServer server(fleet);
  if (!server.start()) {
    GTEST_SKIP() << "cannot bind a loopback TCP socket in this environment";
  }
  std::thread runner([&fleet] { fleet.run(); });

  // "top\n" instead of an attach line: one rendered table, then the
  // server closes the session (recv returns 0 -> read_until sees EOF).
  TcpClient t;
  bool ok = t.connect_to(server.port()) && t.send_all("top\n") &&
            t.read_until("FLEET machines=2");

  fleet.request_stop_all();
  runner.join();
  server.stop();

  EXPECT_TRUE(ok) << "top bytes so far: " << t.buf;
  // Header line plus one row per machine, with the column banner between.
  EXPECT_NE(t.buf.find("id state"), std::string::npos) << t.buf;
  EXPECT_NE(t.buf.find("\n   0 "), std::string::npos) << t.buf;
  EXPECT_NE(t.buf.find("\n   1 "), std::string::npos) << t.buf;
}

// ---------------------------------------------------------------- logging --

TEST(FleetLog, MachineTagPrefixesComponentPerThread) {
  struct Line {
    std::string component;
    std::string message;
  };
  static std::vector<Line> captured;
  captured.clear();
  set_log_sink([](LogLevel, std::string_view comp, std::string_view msg) {
    captured.push_back({std::string(comp), std::string(msg)});
  });

  const Logger log("fleet.test");
  log.warn("untagged");
  {
    ScopedLogMachine tag(7);
    log.warn("tagged");
    // Another thread is unaffected: the tag is thread-local.
    std::thread([&log] { log.warn("other-thread"); }).join();
  }
  log.warn("untagged-again");
  set_log_sink(nullptr);

  ASSERT_EQ(captured.size(), 4u);
  EXPECT_EQ(captured[0].component, "fleet.test");
  EXPECT_EQ(captured[1].component, "m7:fleet.test");
  EXPECT_EQ(captured[1].message, "tagged");
  EXPECT_EQ(captured[2].component, "fleet.test");
  EXPECT_EQ(captured[3].component, "fleet.test");
}

}  // namespace
}  // namespace vdbg::test

// Shadow-MMU unit tests: identity tables, guest walks, lazy sync, faithful
// A/D maintenance with dirty tracking, guest page-table write protection
// with derived-entry invalidation, pool recycling, and the third protection
// level (monitor frames never mapped).
#include <gtest/gtest.h>

#include "cpu/mmu.h"
#include "vmm/shadow_mmu.h"

namespace vdbg::test {
namespace {

using cpu::PfErr;
using cpu::Pte;
using vmm::ShadowMmu;

constexpr u32 kGuestLimit = 8 * 1024 * 1024;   // 8 MiB guest RAM
constexpr u32 kMonitorBase = kGuestLimit;
constexpr u32 kMonitorLen = 4 * 1024 * 1024;

struct ShadowRig {
  ShadowRig() : mem(kGuestLimit + kMonitorLen), shadow(mem, config()) {
    // Guest page tables: PD at 1 MiB, one table at 1 MiB + 4 KiB.
    mem.write32(kPd, Pte::make(kPt, true, true));
  }
  static ShadowMmu::Config config() {
    ShadowMmu::Config c;
    c.monitor_base = kMonitorBase;
    c.monitor_len = kMonitorLen;
    c.guest_mem_limit = kGuestLimit;
    return c;
  }
  void map(u32 page, PAddr frame, bool w, bool u) {
    mem.write32(kPt + page * 4, Pte::make(frame, w, u));
  }
  /// Reads the shadow PTE for va (0 when absent).
  u32 shadow_pte(VAddr va) const {
    const u32 pde = mem.read32(shadow.shadow_pd() + (va >> 22) * 4);
    if (!(pde & Pte::kP)) return 0;
    return mem.read32((pde & Pte::kFrameMask) + ((va >> 12) & 0x3ff) * 4);
  }

  static constexpr PAddr kPd = 0x100000;
  static constexpr PAddr kPt = 0x101000;
  cpu::PhysMem mem;
  ShadowMmu shadow;
};

TEST(ShadowMmu, IdentityMapsGuestRamSupervisorOnly) {
  ShadowRig rig;
  const PAddr pd = rig.shadow.identity_pd();
  // Probe a few addresses through the identity tables by hand.
  for (PAddr a : {PAddr{0}, PAddr{0x123000}, PAddr{kGuestLimit - 0x1000}}) {
    const u32 pde = rig.mem.read32(pd + (a >> 22) * 4);
    ASSERT_TRUE(pde & Pte::kP);
    const u32 pte =
        rig.mem.read32((pde & Pte::kFrameMask) + ((a >> 12) & 0x3ff) * 4);
    ASSERT_TRUE(pte & Pte::kP) << std::hex << a;
    EXPECT_EQ(pte & Pte::kFrameMask, a & Pte::kFrameMask);
    EXPECT_FALSE(pte & Pte::kU);
  }
  // Monitor frames are NOT identity-mapped.
  const u32 pde = rig.mem.read32(pd + (kMonitorBase >> 22) * 4);
  if (pde & Pte::kP) {
    const u32 pte = rig.mem.read32((pde & Pte::kFrameMask) +
                                   ((kMonitorBase >> 12) & 0x3ff) * 4);
    EXPECT_FALSE(pte & Pte::kP);
  }
}

TEST(ShadowMmu, GuestWalkReportsPermissionsAndErrcodes) {
  ShadowRig rig;
  rig.map(5, 0x5000, /*w=*/false, /*u=*/true);
  auto w = rig.shadow.walk_guest(ShadowRig::kPd, 0x5000, false, false);
  EXPECT_TRUE(w.ok);
  EXPECT_FALSE(w.writable);
  EXPECT_TRUE(w.user);

  w = rig.shadow.walk_guest(ShadowRig::kPd, 0x5000, true, false);
  EXPECT_FALSE(w.ok);
  EXPECT_TRUE(w.errcode & PfErr::kPresent);
  EXPECT_TRUE(w.errcode & PfErr::kWrite);

  w = rig.shadow.walk_guest(ShadowRig::kPd, 0x900000, false, false);
  EXPECT_FALSE(w.ok);
  EXPECT_FALSE(w.errcode & PfErr::kPresent);  // not mapped
}

TEST(ShadowMmu, FaultSyncInstallsEntryAndSetsGuestAccessed) {
  ShadowRig rig;
  rig.map(5, 0x5000, true, false);
  const auto out =
      rig.shadow.handle_fault(ShadowRig::kPd, 0x5000, 0 /*read, sup*/);
  EXPECT_EQ(out.kind, ShadowMmu::FaultOutcome::kSynced);
  const u32 spte = rig.shadow_pte(0x5000);
  ASSERT_TRUE(spte & Pte::kP);
  EXPECT_EQ(spte & Pte::kFrameMask, 0x5000u);
  EXPECT_TRUE(rig.mem.read32(ShadowRig::kPt + 5 * 4) & Pte::kA);
  EXPECT_EQ(rig.shadow.syncs(), 1u);
}

TEST(ShadowMmu, DirtyTrackingMapsReadOnlyUntilWrite) {
  ShadowRig rig;
  rig.map(5, 0x5000, true, false);
  rig.shadow.handle_fault(ShadowRig::kPd, 0x5000, 0);  // read fault
  EXPECT_FALSE(rig.shadow_pte(0x5000) & Pte::kW);  // RO despite guest W
  EXPECT_FALSE(rig.mem.read32(ShadowRig::kPt + 5 * 4) & Pte::kD);

  const auto out =
      rig.shadow.handle_fault(ShadowRig::kPd, 0x5000, PfErr::kWrite);
  EXPECT_EQ(out.kind, ShadowMmu::FaultOutcome::kSynced);
  EXPECT_TRUE(rig.shadow_pte(0x5000) & Pte::kW);  // upgraded
  EXPECT_TRUE(rig.mem.read32(ShadowRig::kPt + 5 * 4) & Pte::kD);  // guest D
}

TEST(ShadowMmu, GuestFaultsAreReflectedWithGuestErrcode) {
  ShadowRig rig;
  rig.map(5, 0x5000, true, /*u=*/false);
  // User access to a supervisor page: genuine guest fault.
  const auto out = rig.shadow.handle_fault(ShadowRig::kPd, 0x5000,
                                           PfErr::kUser | PfErr::kWrite);
  EXPECT_EQ(out.kind, ShadowMmu::FaultOutcome::kReflect);
  EXPECT_TRUE(out.guest_errcode & PfErr::kPresent);
  EXPECT_TRUE(out.guest_errcode & PfErr::kUser);
}

TEST(ShadowMmu, MonitorFramesAreNeverMappedForTheGuest) {
  ShadowRig rig;
  rig.map(6, kMonitorBase, true, false);  // guest maps a monitor frame
  const auto out =
      rig.shadow.handle_fault(ShadowRig::kPd, 0x6000, PfErr::kWrite);
  EXPECT_EQ(out.kind, ShadowMmu::FaultOutcome::kReflect);
  EXPECT_TRUE(out.guest_errcode & PfErr::kPresent);  // denied as protection
  EXPECT_EQ(rig.shadow_pte(0x6000), 0u);             // nothing installed
}

TEST(ShadowMmu, GuestPageTableFramesAreWriteProtected) {
  ShadowRig rig;
  rig.map(5, 0x5000, true, false);
  // Identity-map the PT frame itself at its own address (page 0x101).
  rig.mem.write32(ShadowRig::kPd + 0, Pte::make(ShadowRig::kPt, true, true));
  rig.map(0x101, ShadowRig::kPt, true, false);
  rig.shadow.handle_fault(ShadowRig::kPd, 0x5000, 0);  // registers frames
  // Now a read fault on the PT's own mapping: installed read-only.
  rig.shadow.handle_fault(ShadowRig::kPd, 0x101000, 0);
  EXPECT_FALSE(rig.shadow_pte(0x101000) & Pte::kW);
  // A write to it is classified as a PT write for emulation.
  const auto out =
      rig.shadow.handle_fault(ShadowRig::kPd, 0x101000 + 5 * 4, PfErr::kWrite);
  EXPECT_EQ(out.kind, ShadowMmu::FaultOutcome::kPtWrite);
  EXPECT_EQ(out.target_pa, ShadowRig::kPt + 5 * 4);
}

TEST(ShadowMmu, PtWriteUpdatesGuestAndInvalidatesDerivedEntry) {
  ShadowRig rig;
  rig.map(5, 0x5000, true, false);
  rig.shadow.handle_fault(ShadowRig::kPd, 0x5000, PfErr::kWrite);
  ASSERT_TRUE(rig.shadow_pte(0x5000) & Pte::kP);

  // Emulated store remaps page 5 -> frame 0x7000.
  rig.shadow.pt_write(ShadowRig::kPt + 5 * 4, 4, Pte::make(0x7000, true, false));
  EXPECT_EQ(rig.mem.read32(ShadowRig::kPt + 5 * 4) & Pte::kFrameMask,
            0x7000u);
  EXPECT_EQ(rig.shadow_pte(0x5000), 0u);  // derived entry dropped
  // Refault resolves to the new frame.
  rig.shadow.handle_fault(ShadowRig::kPd, 0x5000, PfErr::kWrite);
  EXPECT_EQ(rig.shadow_pte(0x5000) & Pte::kFrameMask, 0x7000u);
}

TEST(ShadowMmu, InvlpgDropsSingleEntry) {
  ShadowRig rig;
  rig.map(5, 0x5000, true, false);
  rig.map(6, 0x6000, true, false);
  rig.shadow.handle_fault(ShadowRig::kPd, 0x5000, 0);
  rig.shadow.handle_fault(ShadowRig::kPd, 0x6000, 0);
  rig.shadow.invlpg(0x5000);
  EXPECT_EQ(rig.shadow_pte(0x5000), 0u);
  EXPECT_NE(rig.shadow_pte(0x6000), 0u);
}

TEST(ShadowMmu, FlushDropsEverythingAndRecyclesPool) {
  ShadowRig rig;
  rig.map(5, 0x5000, true, false);
  rig.shadow.handle_fault(ShadowRig::kPd, 0x5000, 0);
  const u64 used = rig.shadow.pool_in_use();
  EXPECT_GT(used, 0u);
  rig.shadow.flush();
  EXPECT_EQ(rig.shadow_pte(0x5000), 0u);
  EXPECT_EQ(rig.shadow.pool_in_use(), 0u);
  EXPECT_GE(rig.shadow.flushes(), 1u);
}

TEST(ShadowMmu, MonitorRegionTooSmallThrows) {
  cpu::PhysMem mem(kGuestLimit + kMonitorLen);
  ShadowMmu::Config c = ShadowRig::config();
  c.monitor_len = 4 * 4096;  // nowhere near enough for the tables
  EXPECT_THROW(vmm::ShadowMmu(mem, c), std::invalid_argument);
}

}  // namespace
}  // namespace vdbg::test

// GuestMemory (vTLB) tests: translation caching, precise invalidation at
// every architectural TLB point, all-or-nothing span accesses, the kill
// switch, and a cached-vs-uncached lockstep differential run of the full
// debug platform (mirroring the interpreter block-cache differential).
#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"
#include "cpu/mmu.h"
#include "cpu/phys_mem.h"
#include "guest/layout.h"
#include "guest/minitactix.h"
#include "harness/platform.h"
#include "vmm/guest_mem.h"
#include "vmm/shadow_mmu.h"

namespace vdbg::test {
namespace {

using cpu::Pte;
using guest::RunConfig;
using harness::Platform;
using harness::PlatformKind;
using harness::PlatformOptions;
using vmm::GuestMemory;
using vmm::ShadowMmu;
using vmm::VcpuState;

constexpr u32 kGuestLimit = 0x100000;  // 1 MiB of guest RAM
constexpr PAddr kPd = 0x1000;
constexpr PAddr kPt = 0x2000;

/// Unit-level rig: physical memory with hand-built guest page tables, a
/// ShadowMmu for walk_guest, and a GuestMemory wired as its listener.
struct GmemRig {
  GmemRig() : mem(0x200000), shadow(mem, shadow_cfg()), gmem(make_gmem()) {
    shadow.set_translation_listener(&gmem);
    gmem.set_walk_costs(700, 60);
    gmem.set_charge_hook([this](Cycles c) { charged += c; });

    // Guest paging on, one PD at kPd with a single PT at kPt covering the
    // first 4 MiB of virtual space.
    vcpu.vcr[cpu::kCr3] = kPd;
    vcpu.vcr[cpu::kCr0] = cpu::kCr0PgBit;
    mem.write32(kPd, Pte::make(kPt, /*w=*/true, /*u=*/false));
    map(0x2, kPt >> cpu::kPageBits, true);  // PT maps itself (PTE pokes)
    map(0x4, 0x5, true);
    map(0x6, 0x7, false);  // read-only
    map(0x8, 0x9, true);
    map(0x9, 0xa, true);   // contiguous VA pair for span tests
    map(0x44, 0xb, true);  // vpn 0x44 = 68: direct-map collision with vpn 4
  }

  static ShadowMmu::Config shadow_cfg() {
    ShadowMmu::Config c;
    c.monitor_base = 0x100000;
    c.monitor_len = 0x100000;
    c.guest_mem_limit = kGuestLimit;
    return c;
  }
  GuestMemory make_gmem() {
    return GuestMemory(mem, shadow, vcpu, kGuestLimit);
  }

  void map(u32 vpn, u32 pfn, bool writable) {
    mem.write32(kPt + vpn * 4,
                Pte::make(pfn << cpu::kPageBits, writable, false));
  }

  cpu::PhysMem mem;
  VcpuState vcpu;
  ShadowMmu shadow;
  GuestMemory gmem;
  Cycles charged = 0;
};

TEST(GuestMem, IdentityWhilePagingOff) {
  GmemRig rig;
  rig.vcpu.vcr[cpu::kCr0] = 0;
  PAddr pa = 0;
  ASSERT_TRUE(rig.gmem.translate(0x1234, false, pa));
  EXPECT_EQ(pa, 0x1234u);
  EXPECT_FALSE(rig.gmem.translate(kGuestLimit, false, pa));  // out of RAM
  EXPECT_EQ(rig.gmem.stats().lookups, 0u);  // identity path is uncounted
  EXPECT_EQ(rig.charged, 0u);
}

TEST(GuestMem, WalkThenHitWithCharges) {
  GmemRig rig;
  PAddr pa = 0;
  ASSERT_TRUE(rig.gmem.translate(0x4020, false, pa));
  EXPECT_EQ(pa, 0x5020u);
  EXPECT_EQ(rig.gmem.stats().walks, 1u);
  EXPECT_EQ(rig.gmem.stats().fills, 1u);
  EXPECT_EQ(rig.charged, 700u);

  ASSERT_TRUE(rig.gmem.translate(0x4f00, false, pa));  // same page
  EXPECT_EQ(pa, 0x5f00u);
  EXPECT_EQ(rig.gmem.stats().hits, 1u);
  EXPECT_EQ(rig.gmem.stats().walks, 1u);
  EXPECT_EQ(rig.charged, 760u);
}

TEST(GuestMem, ReadFillServesLaterWritesOfWritablePages) {
  GmemRig rig;
  PAddr pa = 0;
  ASSERT_TRUE(rig.gmem.translate(0x4000, false, pa));  // read walk
  ASSERT_TRUE(rig.gmem.translate(0x4000, true, pa));   // write: cached
  EXPECT_EQ(rig.gmem.stats().hits, 1u);
  EXPECT_EQ(rig.gmem.stats().walks, 1u);
}

TEST(GuestMem, ReadOnlyPageNeverServesWrites) {
  GmemRig rig;
  PAddr pa = 0;
  ASSERT_TRUE(rig.gmem.translate(0x6000, false, pa));
  EXPECT_EQ(pa, 0x7000u);
  // The cached entry records non-writable: a write misses and the guest
  // walk denies it.
  EXPECT_FALSE(rig.gmem.translate(0x6000, true, pa));
  EXPECT_EQ(rig.gmem.stats().hits, 0u);
  EXPECT_EQ(rig.gmem.stats().walks, 2u);
}

TEST(GuestMem, FlushDropsEverything) {
  GmemRig rig;
  PAddr pa = 0;
  ASSERT_TRUE(rig.gmem.translate(0x4000, false, pa));
  ASSERT_TRUE(rig.gmem.translate(0x8000, false, pa));
  // A CR3/CR0 load reaches the vTLB as ShadowMmu::flush via the listener.
  rig.shadow.flush();
  EXPECT_GE(rig.gmem.stats().flushes, 1u);
  ASSERT_TRUE(rig.gmem.translate(0x4000, false, pa));
  EXPECT_EQ(rig.gmem.stats().walks, 3u);  // refilled, not served from cache
}

TEST(GuestMem, InvlpgDropsOnlyThatPage) {
  GmemRig rig;
  PAddr pa = 0;
  ASSERT_TRUE(rig.gmem.translate(0x4000, false, pa));
  ASSERT_TRUE(rig.gmem.translate(0x8000, false, pa));
  rig.shadow.invlpg(0x4000);
  EXPECT_EQ(rig.gmem.stats().invalidations, 1u);
  ASSERT_TRUE(rig.gmem.translate(0x8000, false, pa));  // survives
  EXPECT_EQ(rig.gmem.stats().hits, 1u);
  ASSERT_TRUE(rig.gmem.translate(0x4000, false, pa));  // dropped: walks
  EXPECT_EQ(rig.gmem.stats().walks, 3u);
}

TEST(GuestMem, EmulatedGuestPtStoreInvalidatesDependentEntry) {
  GmemRig rig;
  PAddr pa = 0;
  ASSERT_TRUE(rig.gmem.translate(0x4000, false, pa));
  EXPECT_EQ(pa, 0x5000u);
  // The guest rewrites its own PTE for vpn 4; the monitor emulates the
  // store with ShadowMmu::pt_write, which must notify the vTLB.
  rig.shadow.pt_write(kPt + 4 * 4, 4, Pte::make(0xc000, true, false));
  ASSERT_TRUE(rig.gmem.translate(0x4000, false, pa));
  EXPECT_EQ(pa, 0xc000u);  // fresh walk sees the new mapping
  EXPECT_EQ(rig.gmem.stats().walks, 2u);
}

TEST(GuestMem, MonitorWriteToPteWordInvalidates) {
  GmemRig rig;
  PAddr pa = 0;
  ASSERT_TRUE(rig.gmem.translate(0x4000, false, pa));
  EXPECT_EQ(pa, 0x5000u);
  // A debugger poke through the monitor lands on the PTE word for vpn 4
  // (the PT maps itself at va 0x2000). The entry depending on that word
  // must drop; unrelated data writes must not invalidate anything.
  const u64 inv_before = rig.gmem.stats().invalidations;
  ASSERT_TRUE(rig.gmem.write32(0x2000 + 4 * 4, Pte::make(0xd000, true, false)));
  EXPECT_GT(rig.gmem.stats().invalidations, inv_before);
  ASSERT_TRUE(rig.gmem.translate(0x4000, false, pa));
  EXPECT_EQ(pa, 0xd000u);

  const u64 inv_mid = rig.gmem.stats().invalidations;
  ASSERT_TRUE(rig.gmem.write32(0x8000, 0xabcd1234));  // plain data page
  EXPECT_EQ(rig.gmem.stats().invalidations, inv_mid);
}

TEST(GuestMem, RawStoreToUnregisteredPtFrameStaysStaleUntilInvlpg) {
  GmemRig rig;
  PAddr pa = 0;
  ASSERT_TRUE(rig.gmem.translate(0x4000, false, pa));
  EXPECT_EQ(pa, 0x5000u);
  // A raw CPU store to a PT frame the shadow has not write-protected yet
  // bypasses every hook. Architectural TLB semantics: the cached
  // translation stays visible until the guest flushes.
  rig.mem.write32(kPt + 4 * 4, Pte::make(0xe000, true, false));
  ASSERT_TRUE(rig.gmem.translate(0x4000, false, pa));
  EXPECT_EQ(pa, 0x5000u);  // stale, like hardware
  rig.shadow.invlpg(0x4000);
  ASSERT_TRUE(rig.gmem.translate(0x4000, false, pa));
  EXPECT_EQ(pa, 0xe000u);
}

TEST(GuestMem, DirectMapCollisionEvicts) {
  GmemRig rig;
  PAddr pa = 0;
  ASSERT_TRUE(rig.gmem.translate(0x4000, false, pa));   // vpn 4
  ASSERT_TRUE(rig.gmem.translate(0x44000, false, pa));  // vpn 68: same slot
  EXPECT_EQ(pa, 0xb000u);
  ASSERT_TRUE(rig.gmem.translate(0x4000, false, pa));   // evicted: walks
  EXPECT_EQ(rig.gmem.stats().walks, 3u);
  EXPECT_EQ(rig.gmem.stats().hits, 0u);
}

TEST(GuestMem, SpanReadWriteCrossesPages) {
  GmemRig rig;
  std::vector<u8> pattern(0x1800);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<u8>(i * 13 + 5);
  }
  // va 0x8400..0x9c00 spans the contiguous vpn 8/9 pair.
  ASSERT_TRUE(rig.gmem.write(0x8400, pattern));
  std::vector<u8> back(pattern.size());
  ASSERT_TRUE(rig.gmem.read(0x8400, back));
  EXPECT_EQ(back, pattern);
  // The bytes landed at the mapped physical frames.
  u8 probe = 0;
  rig.mem.read_block(0x9400, {&probe, 1});
  EXPECT_EQ(probe, pattern[0]);
}

TEST(GuestMem, WriteIsAllOrNothing) {
  GmemRig rig;
  // vpn 4 is mapped, vpn 5 is not: a span crossing 0x4fff->0x5000 must fail
  // without touching the first page.
  const u8 before = 0x5a;
  rig.mem.write_block(0x5ff8, {&before, 1});
  std::vector<u8> data(16, 0xff);
  EXPECT_FALSE(rig.gmem.write(0x4ff8, data));
  u8 after = 0;
  rig.mem.read_block(0x5ff8, {&after, 1});
  EXPECT_EQ(after, before);  // nothing stored
}

TEST(GuestMem, KillSwitchForcesFullWalks) {
  GmemRig rig;
  rig.gmem.set_translation_cache_enabled(false);
  PAddr pa = 0;
  ASSERT_TRUE(rig.gmem.translate(0x4020, false, pa));
  EXPECT_EQ(pa, 0x5020u);
  ASSERT_TRUE(rig.gmem.translate(0x4020, false, pa));
  EXPECT_EQ(pa, 0x5020u);  // identical result, never cached
  EXPECT_EQ(rig.gmem.stats().hits, 0u);
  EXPECT_EQ(rig.gmem.stats().walks, 2u);
  EXPECT_EQ(rig.gmem.stats().fills, 0u);
  EXPECT_EQ(rig.charged, 1400u);

  rig.gmem.set_translation_cache_enabled(true);
  ASSERT_TRUE(rig.gmem.translate(0x4020, false, pa));  // fills again
  ASSERT_TRUE(rig.gmem.translate(0x4020, false, pa));
  EXPECT_EQ(rig.gmem.stats().hits, 1u);
}

// ---------------------------------------------------------------------------
// Integration: the monitor's hot path actually rides the vTLB.
// ---------------------------------------------------------------------------

TEST(GuestMemIntegration, MonitorHotPathHitsTranslationCache) {
  Platform p(PlatformKind::kLvmm);
  p.prepare(RunConfig::for_rate_mbps(40.0));
  p.machine().run_for(seconds_to_cycles(0.05));
  ASSERT_EQ(p.mailbox().magic, guest::Mailbox::kMagicValue);

  const auto& st = p.monitor()->guest_mem().stats();
  EXPECT_GT(st.lookups, 0u);
  // Injection frames and vIDT gates hammer the same few pages: the cache
  // must serve the bulk of hot-path translations.
  EXPECT_GT(st.hits, st.walks);
  // Exit-kind observability: interrupts and syscalls were dispatched and
  // their cycle costs recorded.
  const auto& es = p.monitor()->exit_stats();
  EXPECT_GT(es.kind(vmm::ExitKind::kInterrupt).count, 0u);
  EXPECT_GT(es.kind(vmm::ExitKind::kSoftInt).count, 0u);
  EXPECT_GT(es.kind(vmm::ExitKind::kInterrupt).cycles, 0u);
  u64 by_kind_total = 0;
  for (unsigned k = 0; k < vmm::kNumExitKinds; ++k) {
    by_kind_total += es.by_kind[k].count;
  }
  EXPECT_EQ(by_kind_total, es.total);
}

// ---------------------------------------------------------------------------
// Differential: cached vs uncached must be bit-identical when the cost
// model charges walks and hits equally (mirrors the interpreter's
// block-cache lockstep fuzz).
// ---------------------------------------------------------------------------

TEST(GuestMemDifferential, CachedAndUncachedRunsStayInLockstep) {
  PlatformOptions opts;
  opts.lvmm_costs.guest_walk_hit = opts.lvmm_costs.guest_walk;

  Platform cached(PlatformKind::kLvmm, opts);
  Platform uncached(PlatformKind::kLvmm, opts);
  const RunConfig rc = RunConfig::for_rate_mbps(40.0);
  cached.prepare(rc);
  uncached.prepare(rc);
  uncached.monitor()->guest_mem().set_translation_cache_enabled(false);

  for (int slice = 0; slice < 10; ++slice) {
    cached.machine().run_for(seconds_to_cycles(0.005));
    uncached.machine().run_for(seconds_to_cycles(0.005));
    const auto& a = cached.machine().cpu().state();
    const auto& b = uncached.machine().cpu().state();
    ASSERT_EQ(a.pc, b.pc) << "slice " << slice;
    ASSERT_EQ(a.psw, b.psw) << "slice " << slice;
    for (unsigned r = 0; r < cpu::kNumGprs; ++r) {
      ASSERT_EQ(a.regs[r], b.regs[r]) << "slice " << slice << " r" << r;
    }
    ASSERT_EQ(cached.machine().cpu().cycles(),
              uncached.machine().cpu().cycles())
        << "slice " << slice;
    ASSERT_EQ(cached.mailbox().segments_sent,
              uncached.mailbox().segments_sent)
        << "slice " << slice;
  }

  // The cache was actually exercised on one side and bypassed on the other.
  EXPECT_GT(cached.monitor()->guest_mem().stats().hits, 0u);
  EXPECT_EQ(uncached.monitor()->guest_mem().stats().hits, 0u);

  // Full guest-RAM comparison at the end.
  const u32 limit = cached.monitor()->config().guest_mem_limit;
  std::vector<u8> ma(limit), mb(limit);
  cached.machine().mem().read_block(0, ma);
  uncached.machine().mem().read_block(0, mb);
  EXPECT_EQ(ma, mb);
}

}  // namespace
}  // namespace vdbg::test

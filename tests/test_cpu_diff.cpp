// Differential testing of the interpreter.
//
// Two layers:
//  * RandomAluMemProgramsMatchReference — random straight-line ALU/memory
//    programs executed both by the VX32 interpreter and by a tiny
//    independent reference model of the ISA semantics; final register files
//    and memory effects must agree exactly.
//  * The CachedVsUncached fuzz — the block-cache fast path versus the
//    kill-switched slow interpreter, run in lockstep over random programs
//    with branches, calls, software interrupts, self-modifying stores and
//    deterministically injected external interrupts. Every slice, the
//    architectural state, cycle count and (non-block_*) stats of both CPUs
//    must be bit-identical; that is the fast path's correctness contract.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "common/rng.h"
#include "testutil.h"

namespace vdbg::test {
namespace {

using namespace vasm;
using cpu::Instr;
using cpu::Opcode;

/// Minimal independent model of the ALU/memory subset (written from the ISA
/// spec in isa.h, deliberately NOT sharing code with the interpreter).
struct RefModel {
  std::array<u32, 8> r{};
  std::map<u32, u32> mem;  // word-addressed sparse memory

  u32 load(u32 addr) const {
    auto it = mem.find(addr & ~3u);
    return it == mem.end() ? 0 : it->second;
  }
  void store(u32 addr, u32 v) { mem[addr & ~3u] = v; }

  void exec(const Instr& in) {
    const u32 a = r[in.rs1 & 7];
    const u32 b = r[in.rs2 & 7];
    auto& d = r[in.rd & 7];
    switch (in.op) {
      case Opcode::kMovI: d = in.imm; break;
      case Opcode::kMov: d = a; break;
      case Opcode::kAdd: d = a + b; break;
      case Opcode::kSub: d = a - b; break;
      case Opcode::kAnd: d = a & b; break;
      case Opcode::kOr: d = a | b; break;
      case Opcode::kXor: d = a ^ b; break;
      case Opcode::kShl: d = a << (b & 31); break;
      case Opcode::kShr: d = a >> (b & 31); break;
      case Opcode::kSar: d = u32(i32(a) >> (b & 31)); break;
      case Opcode::kMul: d = a * b; break;
      case Opcode::kAddI: d = a + in.imm; break;
      case Opcode::kSubI: d = a - in.imm; break;
      case Opcode::kAndI: d = a & in.imm; break;
      case Opcode::kOrI: d = a | in.imm; break;
      case Opcode::kXorI: d = a ^ in.imm; break;
      case Opcode::kShlI: d = a << (in.imm & 31); break;
      case Opcode::kShrI: d = a >> (in.imm & 31); break;
      case Opcode::kSarI: d = u32(i32(a) >> (in.imm & 31)); break;
      case Opcode::kMulI: d = a * in.imm; break;
      case Opcode::kLd32: d = load(a + in.imm); break;
      case Opcode::kSt32: store(a + in.imm, b); break;
      default: break;
    }
  }
};

// Scratch RAM the random programs may address: one aligned 4 KiB window.
constexpr u32 kScratch = 0x40000;

Instr random_instr(Rng& rng) {
  static const Opcode kOps[] = {
      Opcode::kMovI, Opcode::kMov,  Opcode::kAdd,  Opcode::kSub,
      Opcode::kAnd,  Opcode::kOr,   Opcode::kXor,  Opcode::kShl,
      Opcode::kShr,  Opcode::kSar,  Opcode::kMul,  Opcode::kAddI,
      Opcode::kSubI, Opcode::kAndI, Opcode::kOrI,  Opcode::kXorI,
      Opcode::kShlI, Opcode::kShrI, Opcode::kSarI, Opcode::kMulI,
      Opcode::kLd32, Opcode::kSt32};
  Instr in;
  in.op = kOps[rng.below(std::size(kOps))];
  // r7 (sp) excluded so the harness stack stays usable; r6 reserved as the
  // scratch-window base register.
  in.rd = static_cast<u8>(rng.below(6));
  in.rs1 = static_cast<u8>(rng.below(6));
  in.rs2 = static_cast<u8>(rng.below(6));
  in.imm = rng.next_u32();
  if (in.op == Opcode::kLd32 || in.op == Opcode::kSt32) {
    // Constrain the effective address: base = r6 (always kScratch),
    // displacement inside the window, word aligned.
    in.rs1 = 6;
    in.imm = static_cast<u32>(rng.below(1024)) * 4;
    if (in.op == Opcode::kSt32) in.rs2 = static_cast<u8>(rng.below(6));
  }
  return in;
}

TEST(CpuDifferential, RandomAluMemProgramsMatchReference) {
  Rng rng(20260705);
  for (int trial = 0; trial < 40; ++trial) {
    // Generate a straight-line program.
    std::vector<Instr> prog;
    const unsigned len = static_cast<unsigned>(rng.between(10, 120));
    for (unsigned i = 0; i < len; ++i) prog.push_back(random_instr(rng));

    // Run on the interpreter.
    CpuHarness h;
    h.load([&](Assembler& a) {
      a.movi(cpu::kR6, u32{kScratch});
      for (const auto& in : prog) {
        const auto bytes = in.encode();
        for (u8 byte : bytes) a.data8(byte);
      }
      a.hlt();
    });
    ASSERT_EQ(h.run(2000), cpu::RunExit::kHalted) << "trial " << trial;

    // Run on the reference model.
    RefModel ref;
    ref.r[6] = kScratch;
    for (const auto& in : prog) ref.exec(in);

    for (unsigned i = 0; i < 6; ++i) {
      EXPECT_EQ(h.cpu.state().regs[i], ref.r[i])
          << "trial " << trial << " r" << i;
    }
    EXPECT_EQ(h.cpu.state().regs[6], kScratch);
    for (const auto& [addr, val] : ref.mem) {
      EXPECT_EQ(h.mem.read32(addr), val)
          << "trial " << trial << " mem @" << std::hex << addr;
    }
  }
}

TEST(CpuDifferential, FlagSemanticsMatchTwoComplementIdentities) {
  // For random a,b: SUB sets C iff a<b (unsigned), Z iff a==b, and the
  // signed comparison (N!=V) iff (i32)a < (i32)b — checked through the
  // conditional-branch outcomes.
  Rng rng(777);
  for (int trial = 0; trial < 60; ++trial) {
    const u32 a = rng.next_u32();
    const u32 b = rng.chance(0.3) ? a : rng.next_u32();
    CpuHarness h;
    h.load([&](Assembler& asmr) {
      asmr.movi(cpu::kR1, u32{a});
      asmr.movi(cpu::kR2, u32{b});
      asmr.movi(cpu::kR0, u32{0});
      asmr.cmp(cpu::kR1, cpu::kR2);
      asmr.jb(l("below"));
      asmr.jmp(l("check_eq"));
      asmr.label("below");
      asmr.ori(cpu::kR0, cpu::kR0, u32{1});
      asmr.label("check_eq");
      asmr.cmp(cpu::kR1, cpu::kR2);
      asmr.jz(l("eq"));
      asmr.jmp(l("check_lt"));
      asmr.label("eq");
      asmr.ori(cpu::kR0, cpu::kR0, u32{2});
      asmr.label("check_lt");
      asmr.cmp(cpu::kR1, cpu::kR2);
      asmr.jl(l("lt"));
      asmr.hlt();
      asmr.label("lt");
      asmr.ori(cpu::kR0, cpu::kR0, u32{4});
      asmr.hlt();
    });
    ASSERT_EQ(h.run(100), cpu::RunExit::kHalted);
    const u32 expect = (a < b ? 1u : 0u) | (a == b ? 2u : 0u) |
                       (i32(a) < i32(b) ? 4u : 0u);
    EXPECT_EQ(h.reg(cpu::kR0), expect)
        << "trial " << trial << " a=" << a << " b=" << b;
  }
}

// ---------------------------------------------------------------------------
// Cached vs uncached differential fuzz
// ---------------------------------------------------------------------------

/// Interrupt line the test asserts by hand (deterministically, between run
/// slices) so both rigs see the same external-interrupt timing.
class ScriptedIntr final : public cpu::IntrLine {
 public:
  bool intr_asserted() const override { return pending_; }
  u8 acknowledge() override {
    pending_ = false;
    return vector_;
  }
  void assert_vector(u8 v) {
    vector_ = v;
    pending_ = true;
  }
  bool pending() const { return pending_; }

 private:
  bool pending_ = false;
  u8 vector_ = 0;
};

/// One CPU with its own memory, scripted I/O and interrupt line.
struct DiffRig {
  DiffRig() : mem(1024 * 1024), cpu(mem, io, &intr) {}
  cpu::PhysMem mem;
  ScriptedIoBus io;
  ScriptedIntr intr;
  cpu::Cpu cpu;
};

constexpr u8 kExtVector = 48;  // external interrupts in the fuzz

/// Emits a 64-gate IDT whose handlers keep the program running: fault
/// vectors (< 32) skip the faulting instruction (saved pc += 8) and IRET;
/// trap-style vectors (software INT, external) plain IRET. Label names:
/// "skip_stub", "iret_stub", "idt".
void emit_fuzz_idt(Assembler& a) {
  using cpu::kR0;
  using cpu::kSp;
  a.label("skip_stub");
  a.push(kR0);
  // Frame after push: [r0, err, pc, psw, sp]; saved pc at sp+8.
  a.ld32(kR0, kSp, 8);
  a.addi(kR0, kR0, u32{8});
  a.st32(kSp, 8, kR0);
  a.pop(kR0);
  a.iret();
  a.label("iret_stub");
  a.iret();
  a.align(8);
  a.label("idt");
  for (u32 v = 0; v < 64; ++v) {
    a.data_ref(l(v < 32 ? "skip_stub" : "iret_stub"));
    a.data32(cpu::Gate{0, true, 0, 0}.pack_flags());
  }
}

/// A random control-flow-heavy program over labels "L0".."L<n-1>" placed
/// every 8 instructions. r6 = scratch base, r5 = program base (self-mod
/// store target), r0-r4 general. Returns nothing; emits into `a`.
void emit_fuzz_program(Assembler& a, Rng& rng, unsigned len) {
  using namespace cpu;
  const unsigned num_labels = len / 8 + 1;
  auto rnd_label = [&] { return l("L" + std::to_string(rng.below(num_labels))); };
  auto rnd_reg = [&] { return static_cast<Reg>(rng.below(5)); };  // r0-r4
  unsigned next_label = 0;
  for (unsigned i = 0; i < len; ++i) {
    if (i % 8 == 0 && next_label < num_labels) {
      a.label("L" + std::to_string(next_label++));
    }
    const unsigned kind = static_cast<unsigned>(rng.below(100));
    if (kind < 45) {
      // Plain ALU op (register or immediate form); memory is handled below.
      Instr in = random_instr(rng);
      while (in.op == Opcode::kLd32 || in.op == Opcode::kSt32) {
        in = random_instr(rng);
      }
      const auto bytes = in.encode();
      for (u8 byte : bytes) a.data8(byte);
    } else if (kind < 60) {
      // Scratch-window memory access, word aligned.
      const i32 disp = static_cast<i32>(rng.below(1024)) * 4;
      if (rng.chance(0.5)) {
        a.ld32(rnd_reg(), kR6, disp);
      } else {
        a.st32(kR6, disp, rnd_reg());
      }
    } else if (kind < 78) {
      // Control flow to a random label (forward or backward).
      switch (rng.below(6)) {
        case 0: a.jmp(rnd_label()); break;
        case 1: a.jz(rnd_label()); break;
        case 2: a.jnz(rnd_label()); break;
        case 3: a.jl(rnd_label()); break;
        case 4: a.jae(rnd_label()); break;
        default: a.cmpi(rnd_reg(), rng.next_u32()); break;
      }
    } else if (kind < 86) {
      // Call/ret pairs are intentionally unbalanced; a RET into garbage
      // faults and the skip handler moves on. Both rigs see it identically.
      if (rng.chance(0.7)) {
        a.call(rnd_label());
      } else {
        a.ret();
      }
    } else if (kind < 92) {
      // Trapping instructions: software INT (trap-style resume), BRK
      // (#BP skip), divide by a possibly-zero register (#DE skip).
      switch (rng.below(3)) {
        case 0: a.int_(static_cast<u8>(32 + rng.below(16))); break;
        case 1: a.brk(); break;
        default: a.divu(rnd_reg(), rnd_reg(), rnd_reg()); break;
      }
    } else if (kind < 96) {
      // Self-modifying store into the program image: r5 holds the program
      // base; clobber a random instruction word. The block cache must
      // detect the new page version; the uncached CPU refetches anyway.
      const i32 disp = static_cast<i32>(rng.below(len)) * 8 +
                       (rng.chance(0.5) ? 4 : 0);
      a.st32(kR5, disp, rnd_reg());
    } else {
      // Stack traffic.
      if (rng.chance(0.5)) {
        a.push(rnd_reg());
      } else {
        a.pop(rnd_reg());
      }
    }
  }
  while (next_label < num_labels) a.label("L" + std::to_string(next_label++));
  a.hlt();
}

TEST(CpuDifferential, CachedVsUncachedLockstepFuzz) {
  Rng rng(20260806);
  u64 total_hits = 0, total_builds = 0, total_invals = 0;
  for (int trial = 0; trial < 30; ++trial) {
    // One program image, loaded into two rigs.
    Assembler a(0x1000);
    a.movi(cpu::kR0, l("idt"));
    a.lidt(cpu::kR0, 64);
    a.movi(cpu::kSp, u32{0x9000});
    a.movi(cpu::kR6, u32{kScratch});
    a.movi(cpu::kR5, l("L0"));
    a.sti();
    const unsigned len = static_cast<unsigned>(rng.between(24, 160));
    emit_fuzz_program(a, rng, len);
    emit_fuzz_idt(a);
    auto prog = a.finalize();

    DiffRig cached, uncached;
    uncached.cpu.set_block_cache_enabled(false);
    prog.load(cached.mem);
    prog.load(uncached.mem);
    cached.cpu.state().pc = 0x1000;
    uncached.cpu.state().pc = 0x1000;

    for (int slice = 0; slice < 60; ++slice) {
      // Deterministic external interrupt injection between slices.
      if (slice % 5 == 2) {
        cached.intr.assert_vector(kExtVector);
        uncached.intr.assert_vector(kExtVector);
      }
      const auto ra = cached.cpu.run(997);
      const auto rb = uncached.cpu.run(997);
      ASSERT_EQ(ra, rb) << "trial " << trial << " slice " << slice;

      const auto& sa = cached.cpu.state();
      const auto& sb = uncached.cpu.state();
      ASSERT_EQ(cached.cpu.cycles(), uncached.cpu.cycles())
          << "trial " << trial << " slice " << slice;
      ASSERT_EQ(sa.pc, sb.pc) << "trial " << trial << " slice " << slice;
      ASSERT_EQ(sa.psw, sb.psw) << "trial " << trial << " slice " << slice;
      ASSERT_EQ(sa.regs, sb.regs) << "trial " << trial << " slice " << slice;
      ASSERT_EQ(sa.cr, sb.cr) << "trial " << trial << " slice " << slice;
      ASSERT_EQ(sa.idt_base, sb.idt_base);
      ASSERT_EQ(sa.idt_count, sb.idt_count);
      ASSERT_EQ(cached.cpu.halted(), uncached.cpu.halted());
      ASSERT_EQ(cached.intr.pending(), uncached.intr.pending());

      // Architectural stats must match exactly; block_* are fast-path-only
      // telemetry and excluded by contract.
      const auto& ta = cached.cpu.stats();
      const auto& tb = uncached.cpu.stats();
      ASSERT_EQ(ta.instructions, tb.instructions)
          << "trial " << trial << " slice " << slice;
      ASSERT_EQ(ta.mem_accesses, tb.mem_accesses)
          << "trial " << trial << " slice " << slice;
      ASSERT_EQ(ta.io_accesses, tb.io_accesses);
      ASSERT_EQ(ta.exceptions, tb.exceptions);
      ASSERT_EQ(ta.interrupts, tb.interrupts)
          << "trial " << trial << " slice " << slice;
      ASSERT_EQ(ta.hook_events, tb.hook_events);
      ASSERT_EQ(cached.cpu.mmu().tlb_hits(), uncached.cpu.mmu().tlb_hits());
      ASSERT_EQ(cached.cpu.mmu().tlb_misses(),
                uncached.cpu.mmu().tlb_misses());

      // Periodic full-memory compare (self-modifying stores and stack
      // traffic must land identically).
      if (slice % 7 == 0) {
        const auto ma = cached.mem.span(0, cached.mem.size());
        const auto mb = uncached.mem.span(0, uncached.mem.size());
        ASSERT_EQ(0, std::memcmp(ma.data(), mb.data(), ma.size()))
            << "trial " << trial << " slice " << slice;
      }
      if (cached.cpu.shutdown()) break;  // triple fault: both dead (checked)
    }
    const auto ma = cached.mem.span(0, cached.mem.size());
    const auto mb = uncached.mem.span(0, uncached.mem.size());
    ASSERT_EQ(0, std::memcmp(ma.data(), mb.data(), ma.size()))
        << "trial " << trial;
    total_hits += cached.cpu.stats().block_hits;
    total_builds += cached.cpu.stats().block_builds;
    total_invals += cached.cpu.stats().block_invalidations;
    EXPECT_EQ(0u, uncached.cpu.stats().block_hits);
    EXPECT_EQ(0u, uncached.cpu.stats().block_builds);
  }
  // The fuzz must actually have exercised the fast path and both
  // invalidation mechanisms, or the whole comparison is vacuous.
  EXPECT_GT(total_hits, 0u);
  EXPECT_GT(total_builds, 0u);
  EXPECT_GT(total_invals, 0u) << "no self-modifying store invalidated a "
                                 "cached block across all trials";
}

TEST(CpuDifferential, SelfModifyingCodePatchesTakeEffectBothPaths) {
  // Pass 1 executes a placeholder NOP that is part of a hot cached block,
  // then patches it to `movi r2, 7` in place; pass 2 must execute the
  // patched instruction. The cached CPU must detect the stale block (page
  // version bump) and rebuild; both CPUs end bit-identical.
  Instr patch;
  patch.op = Opcode::kMovI;
  patch.rd = 2;
  patch.rs1 = 0;
  patch.rs2 = 0;
  patch.imm = 7;
  const auto enc = patch.encode();
  const u32 lo = u32(enc[0]) | (u32(enc[1]) << 8) | (u32(enc[2]) << 16) |
                 (u32(enc[3]) << 24);
  const u32 hi = u32(enc[4]) | (u32(enc[5]) << 8) | (u32(enc[6]) << 16) |
                 (u32(enc[7]) << 24);

  auto build = [&](CpuHarness& h) {
    h.load([&](Assembler& a) {
      a.movi(cpu::kR5, u32{0});          // pass counter
      a.movi(cpu::kR3, l("placeholder"));
      a.movi(cpu::kR1, u32{lo});
      a.movi(cpu::kR4, u32{hi});
      a.jmp(l("loop"));  // block boundary: the loop head starts its own block
      a.label("loop");
      a.label("placeholder");
      a.nop();                           // becomes `movi r2, 7` after pass 1
      a.cmpi(cpu::kR5, u32{1});
      a.jz(l("done"));
      a.st32(cpu::kR3, 0, cpu::kR1);     // patch the placeholder word
      a.st32(cpu::kR3, 4, cpu::kR4);
      a.addi(cpu::kR5, cpu::kR5, u32{1});
      a.jmp(l("loop"));
      a.label("done");
      a.hlt();
    });
  };

  CpuHarness cached, uncached;
  build(cached);
  build(uncached);
  uncached.cpu.set_block_cache_enabled(false);
  ASSERT_EQ(cached.cpu.run(10000), cpu::RunExit::kHalted);
  ASSERT_EQ(uncached.cpu.run(10000), cpu::RunExit::kHalted);

  EXPECT_EQ(7u, cached.cpu.state().regs[2]) << "patched instr did not run";
  EXPECT_EQ(cached.cpu.state().regs, uncached.cpu.state().regs);
  EXPECT_EQ(cached.cpu.state().pc, uncached.cpu.state().pc);
  EXPECT_EQ(cached.cpu.cycles(), uncached.cpu.cycles());
  EXPECT_EQ(cached.cpu.stats().instructions,
            uncached.cpu.stats().instructions);
  EXPECT_GE(cached.cpu.stats().block_invalidations, 1u)
      << "stale block was not detected";
}

TEST(CpuDifferential, BreakpointPatchViaWriteVirtInvalidates) {
  // Debugger-style breakpoint patching: run a hot loop until its block is
  // cached, then rewrite the opcode of one loop instruction to kBrk through
  // Cpu::write_virt (the debug stub's code path for inserting breakpoints).
  // Both CPUs must take #BP at the same pc with identical state, and the
  // cached CPU must invalidate the stale block rather than execute it.
  auto build = [](CpuHarness& h) {
    h.load([](Assembler& a) {
      a.movi(cpu::kR0, l("idt"));
      a.lidt(cpu::kR0, 64);
      a.movi(cpu::kSp, u32{0x9000});
      a.movi(cpu::kR0, u32{0});
      a.label("loop");
      a.addi(cpu::kR0, cpu::kR0, u32{1});
      a.cmpi(cpu::kR0, u32{0x7fffffff});
      a.jnz(l("loop"));
      a.hlt();
      emit_test_idt(a);
    });
  };
  // The addi sits 4 instructions past the image base.
  const u32 patch_va = 0x1000 + 4 * cpu::kInstrBytes;

  CpuHarness cached, uncached;
  build(cached);
  build(uncached);
  uncached.cpu.set_block_cache_enabled(false);

  // Let the loop get hot (the cached rig builds and reuses its block).
  ASSERT_EQ(cached.cpu.run(5000), cpu::RunExit::kBudget);
  ASSERT_EQ(uncached.cpu.run(5000), cpu::RunExit::kBudget);
  ASSERT_EQ(cached.cpu.cycles(), uncached.cpu.cycles());
  ASSERT_EQ(cached.cpu.state().regs, uncached.cpu.state().regs);
  ASSERT_GT(cached.cpu.stats().block_hits, 0u);

  // Patch the loop body's opcode to BRK on both rigs.
  const u8 brk_op = static_cast<u8>(Opcode::kBrk);
  ASSERT_TRUE(cached.cpu.write_virt(patch_va, {&brk_op, 1}));
  ASSERT_TRUE(uncached.cpu.write_virt(patch_va, {&brk_op, 1}));

  // Both must now take #BP: the test IDT records the event and halts.
  ASSERT_EQ(cached.cpu.run(5000), cpu::RunExit::kHalted);
  ASSERT_EQ(uncached.cpu.run(5000), cpu::RunExit::kHalted);

  const auto ra = read_trap_record(cached.mem);
  const auto rb = read_trap_record(uncached.mem);
  EXPECT_EQ(3u, ra.vector);  // #BP
  EXPECT_EQ(patch_va, ra.pc);
  EXPECT_EQ(ra.vector, rb.vector);
  EXPECT_EQ(ra.pc, rb.pc);
  EXPECT_EQ(ra.psw, rb.psw);
  EXPECT_EQ(ra.sp, rb.sp);
  EXPECT_EQ(cached.cpu.cycles(), uncached.cpu.cycles());
  EXPECT_EQ(cached.cpu.state().regs, uncached.cpu.state().regs);
  EXPECT_GE(cached.cpu.stats().block_invalidations, 1u);

  // The explicit belt-and-braces API also drops blocks.
  const u64 before = cached.cpu.stats().block_invalidations;
  cached.cpu.invalidate_block_cache();
  EXPECT_GT(cached.cpu.stats().block_invalidations, before);
}

}  // namespace
}  // namespace vdbg::test

// Differential testing of the interpreter.
//
// Two layers:
//  * RandomAluMemProgramsMatchReference — random straight-line ALU/memory
//    programs executed both by the VX32 interpreter and by a tiny
//    independent reference model of the ISA semantics; final register files
//    and memory effects must agree exactly.
//  * The three-tier lockstep fuzz — the superblock tier (tier 2) and the
//    block-cache tier (tier 1) versus the kill-switched slow interpreter
//    (tier 0), run in lockstep over random programs with branches, calls,
//    software interrupts, self-modifying stores and deterministically
//    injected external interrupts. Every slice, the architectural state,
//    cycle count and (non-telemetry) stats of all three CPUs must be
//    bit-identical; that is the fast paths' correctness contract.
//  * Directed superblock cases: chain unchaining under self-modifying code
//    and breakpoint patching, chaining across a page-boundary block cut,
//    and the generic-tail self-chain guard.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <cstring>

#include "common/rng.h"
#include "testutil.h"

namespace vdbg::test {
namespace {

using namespace vasm;
using cpu::Instr;
using cpu::Opcode;

/// Full byte image of a machine's physical memory (COW pages are not
/// contiguous, so whole-memory compares go through read_block).
std::vector<u8> dump_mem(const cpu::PhysMem& m) {
  std::vector<u8> out(m.size());
  m.read_block(0, out);
  return out;
}

/// Minimal independent model of the ALU/memory subset (written from the ISA
/// spec in isa.h, deliberately NOT sharing code with the interpreter).
struct RefModel {
  std::array<u32, 8> r{};
  std::map<u32, u32> mem;  // word-addressed sparse memory

  u32 load(u32 addr) const {
    auto it = mem.find(addr & ~3u);
    return it == mem.end() ? 0 : it->second;
  }
  void store(u32 addr, u32 v) { mem[addr & ~3u] = v; }

  void exec(const Instr& in) {
    const u32 a = r[in.rs1 & 7];
    const u32 b = r[in.rs2 & 7];
    auto& d = r[in.rd & 7];
    switch (in.op) {
      case Opcode::kMovI: d = in.imm; break;
      case Opcode::kMov: d = a; break;
      case Opcode::kAdd: d = a + b; break;
      case Opcode::kSub: d = a - b; break;
      case Opcode::kAnd: d = a & b; break;
      case Opcode::kOr: d = a | b; break;
      case Opcode::kXor: d = a ^ b; break;
      case Opcode::kShl: d = a << (b & 31); break;
      case Opcode::kShr: d = a >> (b & 31); break;
      case Opcode::kSar: d = u32(i32(a) >> (b & 31)); break;
      case Opcode::kMul: d = a * b; break;
      case Opcode::kAddI: d = a + in.imm; break;
      case Opcode::kSubI: d = a - in.imm; break;
      case Opcode::kAndI: d = a & in.imm; break;
      case Opcode::kOrI: d = a | in.imm; break;
      case Opcode::kXorI: d = a ^ in.imm; break;
      case Opcode::kShlI: d = a << (in.imm & 31); break;
      case Opcode::kShrI: d = a >> (in.imm & 31); break;
      case Opcode::kSarI: d = u32(i32(a) >> (in.imm & 31)); break;
      case Opcode::kMulI: d = a * in.imm; break;
      case Opcode::kLd32: d = load(a + in.imm); break;
      case Opcode::kSt32: store(a + in.imm, b); break;
      default: break;
    }
  }
};

// Scratch RAM the random programs may address: one aligned 4 KiB window.
constexpr u32 kScratch = 0x40000;

Instr random_instr(Rng& rng) {
  static const Opcode kOps[] = {
      Opcode::kMovI, Opcode::kMov,  Opcode::kAdd,  Opcode::kSub,
      Opcode::kAnd,  Opcode::kOr,   Opcode::kXor,  Opcode::kShl,
      Opcode::kShr,  Opcode::kSar,  Opcode::kMul,  Opcode::kAddI,
      Opcode::kSubI, Opcode::kAndI, Opcode::kOrI,  Opcode::kXorI,
      Opcode::kShlI, Opcode::kShrI, Opcode::kSarI, Opcode::kMulI,
      Opcode::kLd32, Opcode::kSt32};
  Instr in;
  in.op = kOps[rng.below(std::size(kOps))];
  // r7 (sp) excluded so the harness stack stays usable; r6 reserved as the
  // scratch-window base register.
  in.rd = static_cast<u8>(rng.below(6));
  in.rs1 = static_cast<u8>(rng.below(6));
  in.rs2 = static_cast<u8>(rng.below(6));
  in.imm = rng.next_u32();
  if (in.op == Opcode::kLd32 || in.op == Opcode::kSt32) {
    // Constrain the effective address: base = r6 (always kScratch),
    // displacement inside the window, word aligned.
    in.rs1 = 6;
    in.imm = static_cast<u32>(rng.below(1024)) * 4;
    if (in.op == Opcode::kSt32) in.rs2 = static_cast<u8>(rng.below(6));
  }
  return in;
}

TEST(CpuDifferential, RandomAluMemProgramsMatchReference) {
  Rng rng(20260705);
  for (int trial = 0; trial < 40; ++trial) {
    // Generate a straight-line program.
    std::vector<Instr> prog;
    const unsigned len = static_cast<unsigned>(rng.between(10, 120));
    for (unsigned i = 0; i < len; ++i) prog.push_back(random_instr(rng));

    // Run on the interpreter.
    CpuHarness h;
    h.load([&](Assembler& a) {
      a.movi(cpu::kR6, u32{kScratch});
      for (const auto& in : prog) {
        const auto bytes = in.encode();
        for (u8 byte : bytes) a.data8(byte);
      }
      a.hlt();
    });
    ASSERT_EQ(h.run(2000), cpu::RunExit::kHalted) << "trial " << trial;

    // Run on the reference model.
    RefModel ref;
    ref.r[6] = kScratch;
    for (const auto& in : prog) ref.exec(in);

    for (unsigned i = 0; i < 6; ++i) {
      EXPECT_EQ(h.cpu.state().regs[i], ref.r[i])
          << "trial " << trial << " r" << i;
    }
    EXPECT_EQ(h.cpu.state().regs[6], kScratch);
    for (const auto& [addr, val] : ref.mem) {
      EXPECT_EQ(h.mem.read32(addr), val)
          << "trial " << trial << " mem @" << std::hex << addr;
    }
  }
}

TEST(CpuDifferential, FlagSemanticsMatchTwoComplementIdentities) {
  // For random a,b: SUB sets C iff a<b (unsigned), Z iff a==b, and the
  // signed comparison (N!=V) iff (i32)a < (i32)b — checked through the
  // conditional-branch outcomes.
  Rng rng(777);
  for (int trial = 0; trial < 60; ++trial) {
    const u32 a = rng.next_u32();
    const u32 b = rng.chance(0.3) ? a : rng.next_u32();
    CpuHarness h;
    h.load([&](Assembler& asmr) {
      asmr.movi(cpu::kR1, u32{a});
      asmr.movi(cpu::kR2, u32{b});
      asmr.movi(cpu::kR0, u32{0});
      asmr.cmp(cpu::kR1, cpu::kR2);
      asmr.jb(l("below"));
      asmr.jmp(l("check_eq"));
      asmr.label("below");
      asmr.ori(cpu::kR0, cpu::kR0, u32{1});
      asmr.label("check_eq");
      asmr.cmp(cpu::kR1, cpu::kR2);
      asmr.jz(l("eq"));
      asmr.jmp(l("check_lt"));
      asmr.label("eq");
      asmr.ori(cpu::kR0, cpu::kR0, u32{2});
      asmr.label("check_lt");
      asmr.cmp(cpu::kR1, cpu::kR2);
      asmr.jl(l("lt"));
      asmr.hlt();
      asmr.label("lt");
      asmr.ori(cpu::kR0, cpu::kR0, u32{4});
      asmr.hlt();
    });
    ASSERT_EQ(h.run(100), cpu::RunExit::kHalted);
    const u32 expect = (a < b ? 1u : 0u) | (a == b ? 2u : 0u) |
                       (i32(a) < i32(b) ? 4u : 0u);
    EXPECT_EQ(h.reg(cpu::kR0), expect)
        << "trial " << trial << " a=" << a << " b=" << b;
  }
}

// ---------------------------------------------------------------------------
// Cached vs uncached differential fuzz
// ---------------------------------------------------------------------------

/// Interrupt line the test asserts by hand (deterministically, between run
/// slices) so both rigs see the same external-interrupt timing.
class ScriptedIntr final : public cpu::IntrLine {
 public:
  bool intr_asserted() const override { return pending_; }
  u8 acknowledge() override {
    pending_ = false;
    return vector_;
  }
  void assert_vector(u8 v) {
    vector_ = v;
    pending_ = true;
  }
  bool pending() const { return pending_; }

 private:
  bool pending_ = false;
  u8 vector_ = 0;
};

/// One CPU with its own memory, scripted I/O and interrupt line.
struct DiffRig {
  DiffRig() : mem(1024 * 1024), cpu(mem, io, &intr) {}
  cpu::PhysMem mem;
  ScriptedIoBus io;
  ScriptedIntr intr;
  cpu::Cpu cpu;
};

constexpr u8 kExtVector = 48;  // external interrupts in the fuzz

/// Emits a 64-gate IDT whose handlers keep the program running: fault
/// vectors (< 32) skip the faulting instruction (saved pc += 8) and IRET;
/// trap-style vectors (software INT, external) plain IRET. Label names:
/// "skip_stub", "iret_stub", "idt".
void emit_fuzz_idt(Assembler& a) {
  using cpu::kR0;
  using cpu::kSp;
  a.label("skip_stub");
  a.push(kR0);
  // Frame after push: [r0, err, pc, psw, sp]; saved pc at sp+8.
  a.ld32(kR0, kSp, 8);
  a.addi(kR0, kR0, u32{8});
  a.st32(kSp, 8, kR0);
  a.pop(kR0);
  a.iret();
  a.label("iret_stub");
  a.iret();
  a.align(8);
  a.label("idt");
  for (u32 v = 0; v < 64; ++v) {
    a.data_ref(l(v < 32 ? "skip_stub" : "iret_stub"));
    a.data32(cpu::Gate{0, true, 0, 0}.pack_flags());
  }
}

/// A random control-flow-heavy program over labels "L0".."L<n-1>" placed
/// every 8 instructions. r6 = scratch base, r5 = program base (self-mod
/// store target), r0-r4 general. Returns nothing; emits into `a`.
void emit_fuzz_program(Assembler& a, Rng& rng, unsigned len) {
  using namespace cpu;
  const unsigned num_labels = len / 8 + 1;
  auto rnd_label = [&] { return l("L" + std::to_string(rng.below(num_labels))); };
  auto rnd_reg = [&] { return static_cast<Reg>(rng.below(5)); };  // r0-r4
  unsigned next_label = 0;
  for (unsigned i = 0; i < len; ++i) {
    if (i % 8 == 0 && next_label < num_labels) {
      a.label("L" + std::to_string(next_label++));
    }
    const unsigned kind = static_cast<unsigned>(rng.below(100));
    if (kind < 45) {
      // Plain ALU op (register or immediate form); memory is handled below.
      Instr in = random_instr(rng);
      while (in.op == Opcode::kLd32 || in.op == Opcode::kSt32) {
        in = random_instr(rng);
      }
      const auto bytes = in.encode();
      for (u8 byte : bytes) a.data8(byte);
    } else if (kind < 60) {
      // Scratch-window memory access, word aligned.
      const i32 disp = static_cast<i32>(rng.below(1024)) * 4;
      if (rng.chance(0.5)) {
        a.ld32(rnd_reg(), kR6, disp);
      } else {
        a.st32(kR6, disp, rnd_reg());
      }
    } else if (kind < 78) {
      // Control flow to a random label (forward or backward).
      switch (rng.below(6)) {
        case 0: a.jmp(rnd_label()); break;
        case 1: a.jz(rnd_label()); break;
        case 2: a.jnz(rnd_label()); break;
        case 3: a.jl(rnd_label()); break;
        case 4: a.jae(rnd_label()); break;
        default: a.cmpi(rnd_reg(), rng.next_u32()); break;
      }
    } else if (kind < 86) {
      // Call/ret pairs are intentionally unbalanced; a RET into garbage
      // faults and the skip handler moves on. Both rigs see it identically.
      if (rng.chance(0.7)) {
        a.call(rnd_label());
      } else {
        a.ret();
      }
    } else if (kind < 92) {
      // Trapping instructions: software INT (trap-style resume), BRK
      // (#BP skip), divide by a possibly-zero register (#DE skip).
      switch (rng.below(3)) {
        case 0: a.int_(static_cast<u8>(32 + rng.below(16))); break;
        case 1: a.brk(); break;
        default: a.divu(rnd_reg(), rnd_reg(), rnd_reg()); break;
      }
    } else if (kind < 96) {
      // Self-modifying store into the program image: r5 holds the program
      // base; clobber a random instruction word. The block cache must
      // detect the new page version; the uncached CPU refetches anyway.
      const i32 disp = static_cast<i32>(rng.below(len)) * 8 +
                       (rng.chance(0.5) ? 4 : 0);
      a.st32(kR5, disp, rnd_reg());
    } else {
      // Stack traffic.
      if (rng.chance(0.5)) {
        a.push(rnd_reg());
      } else {
        a.pop(rnd_reg());
      }
    }
  }
  while (next_label < num_labels) a.label("L" + std::to_string(next_label++));
  a.hlt();
}

/// Asserts rig `b` (a fast tier) is architecturally bit-identical to the
/// reference rig `a` (the slow interpreter) at a run-slice boundary.
void expect_rigs_identical(DiffRig& a, DiffRig& b, int trial, int slice,
                           const char* tier) {
  const auto& sa = a.cpu.state();
  const auto& sb = b.cpu.state();
  ASSERT_EQ(a.cpu.cycles(), b.cpu.cycles())
      << tier << " trial " << trial << " slice " << slice;
  ASSERT_EQ(sa.pc, sb.pc) << tier << " trial " << trial << " slice " << slice;
  ASSERT_EQ(sa.psw, sb.psw) << tier << " trial " << trial << " slice "
                            << slice;
  ASSERT_EQ(sa.regs, sb.regs) << tier << " trial " << trial << " slice "
                              << slice;
  ASSERT_EQ(sa.cr, sb.cr) << tier << " trial " << trial << " slice " << slice;
  ASSERT_EQ(sa.idt_base, sb.idt_base);
  ASSERT_EQ(sa.idt_count, sb.idt_count);
  ASSERT_EQ(a.cpu.halted(), b.cpu.halted());
  ASSERT_EQ(a.intr.pending(), b.intr.pending());

  // Architectural stats must match exactly; block_* and the sbc stats are
  // fast-path-only telemetry and excluded by contract.
  const auto& ta = a.cpu.stats();
  const auto& tb = b.cpu.stats();
  ASSERT_EQ(ta.instructions, tb.instructions)
      << tier << " trial " << trial << " slice " << slice;
  ASSERT_EQ(ta.mem_accesses, tb.mem_accesses)
      << tier << " trial " << trial << " slice " << slice;
  ASSERT_EQ(ta.io_accesses, tb.io_accesses);
  ASSERT_EQ(ta.exceptions, tb.exceptions);
  ASSERT_EQ(ta.interrupts, tb.interrupts)
      << tier << " trial " << trial << " slice " << slice;
  ASSERT_EQ(ta.hook_events, tb.hook_events);
  ASSERT_EQ(a.cpu.mmu().tlb_hits(), b.cpu.mmu().tlb_hits())
      << tier << " trial " << trial << " slice " << slice;
  ASSERT_EQ(a.cpu.mmu().tlb_misses(), b.cpu.mmu().tlb_misses());
}

/// Environment override for the nightly extended fuzz (VDBG_FUZZ_TRIALS /
/// VDBG_FUZZ_SEED); the checked-in defaults keep the tier-1 run fast and
/// fully deterministic.
u64 env_u64(const char* name, u64 fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

TEST(CpuDifferential, ThreeTierLockstepFuzz) {
  const int trials = static_cast<int>(env_u64("VDBG_FUZZ_TRIALS", 30));
  Rng rng(env_u64("VDBG_FUZZ_SEED", 20260806));
  u64 total_hits = 0, total_builds = 0, total_invals = 0;
  cpu::SbcStats sb_totals;
  for (int trial = 0; trial < trials; ++trial) {
    // One program image, loaded into three rigs: tier 0 (slow interpreter),
    // tier 1 (block cache only) and tier 2 (superblocks on top).
    Assembler a(0x1000);
    a.movi(cpu::kR0, l("idt"));
    a.lidt(cpu::kR0, 64);
    a.movi(cpu::kSp, u32{0x9000});
    a.movi(cpu::kR6, u32{kScratch});
    a.movi(cpu::kR5, l("L0"));
    a.sti();
    const unsigned len = static_cast<unsigned>(rng.between(24, 160));
    emit_fuzz_program(a, rng, len);
    emit_fuzz_idt(a);
    auto prog = a.finalize();

    DiffRig interp, block, super;
    interp.cpu.set_block_cache_enabled(false);
    block.cpu.set_superblocks_enabled(false);
    for (DiffRig* r : {&interp, &block, &super}) {
      prog.load(r->mem);
      r->cpu.state().pc = 0x1000;
    }

    for (int slice = 0; slice < 60; ++slice) {
      // Deterministic external interrupt injection between slices.
      if (slice % 5 == 2) {
        for (DiffRig* r : {&interp, &block, &super}) {
          r->intr.assert_vector(kExtVector);
        }
      }
      const auto ra = interp.cpu.run(997);
      const auto rb = block.cpu.run(997);
      const auto rc = super.cpu.run(997);
      ASSERT_EQ(ra, rb) << "trial " << trial << " slice " << slice;
      ASSERT_EQ(ra, rc) << "trial " << trial << " slice " << slice;
      expect_rigs_identical(interp, block, trial, slice, "block-cache");
      if (::testing::Test::HasFatalFailure()) return;
      expect_rigs_identical(interp, super, trial, slice, "superblock");
      if (::testing::Test::HasFatalFailure()) return;

      // Periodic full-memory compare (self-modifying stores and stack
      // traffic must land identically).
      if (slice % 7 == 0) {
        const auto ma = dump_mem(interp.mem);
        const auto mb = dump_mem(block.mem);
        const auto mc = dump_mem(super.mem);
        ASSERT_EQ(ma, mb) << "trial " << trial << " slice " << slice;
        ASSERT_EQ(ma, mc) << "trial " << trial << " slice " << slice;
      }
      if (interp.cpu.shutdown()) break;  // triple fault: all dead (checked)
    }
    for (DiffRig* r : {&block, &super}) {
      ASSERT_EQ(dump_mem(interp.mem), dump_mem(r->mem)) << "trial " << trial;
    }
    total_hits += block.cpu.stats().block_hits;
    total_builds += block.cpu.stats().block_builds;
    total_invals += block.cpu.stats().block_invalidations;
    const auto& sbc = super.cpu.sbc_stats();
    sb_totals.translations += sbc.translations;
    sb_totals.hits += sbc.hits;
    sb_totals.chains += sbc.chains;
    sb_totals.unchains += sbc.unchains;
    sb_totals.invalidations += sbc.invalidations;
    EXPECT_EQ(0u, interp.cpu.stats().block_hits);
    EXPECT_EQ(0u, interp.cpu.stats().block_builds);
    // Tier 1's superblock switch is off: its sbc stats must stay zero.
    EXPECT_EQ(0u, block.cpu.sbc_stats().translations);
    EXPECT_EQ(0u, block.cpu.sbc_stats().hits);
  }
  // The fuzz must actually have exercised the fast paths and both
  // invalidation mechanisms, or the whole comparison is vacuous. The rare
  // events (self-modifying stores, superblock drops) need a full-size run
  // to be guaranteed; a shrunk VDBG_FUZZ_TRIALS repro run skips the
  // coverage audit.
  if (trials < 30) return;
  EXPECT_GT(total_hits, 0u);
  EXPECT_GT(total_builds, 0u);
  EXPECT_GT(total_invals, 0u) << "no self-modifying store invalidated a "
                                 "cached block across all trials";
  EXPECT_GT(sb_totals.translations, 0u) << "no hot block was ever promoted";
  EXPECT_GT(sb_totals.hits, 0u) << "no superblock was ever dispatched";
  EXPECT_GT(sb_totals.chains, 0u) << "no direct chain was ever followed";
  EXPECT_GT(sb_totals.invalidations, 0u)
      << "no superblock was ever dropped across all trials";
}

TEST(CpuDifferential, SelfModifyingCodePatchesTakeEffectBothPaths) {
  // Pass 1 executes a placeholder NOP that is part of a hot cached block,
  // then patches it to `movi r2, 7` in place; pass 2 must execute the
  // patched instruction. The cached CPU must detect the stale block (page
  // version bump) and rebuild; both CPUs end bit-identical.
  Instr patch;
  patch.op = Opcode::kMovI;
  patch.rd = 2;
  patch.rs1 = 0;
  patch.rs2 = 0;
  patch.imm = 7;
  const auto enc = patch.encode();
  const u32 lo = u32(enc[0]) | (u32(enc[1]) << 8) | (u32(enc[2]) << 16) |
                 (u32(enc[3]) << 24);
  const u32 hi = u32(enc[4]) | (u32(enc[5]) << 8) | (u32(enc[6]) << 16) |
                 (u32(enc[7]) << 24);

  auto build = [&](CpuHarness& h) {
    h.load([&](Assembler& a) {
      a.movi(cpu::kR5, u32{0});          // pass counter
      a.movi(cpu::kR3, l("placeholder"));
      a.movi(cpu::kR1, u32{lo});
      a.movi(cpu::kR4, u32{hi});
      a.jmp(l("loop"));  // block boundary: the loop head starts its own block
      a.label("loop");
      a.label("placeholder");
      a.nop();                           // becomes `movi r2, 7` after pass 1
      a.cmpi(cpu::kR5, u32{1});
      a.jz(l("done"));
      a.st32(cpu::kR3, 0, cpu::kR1);     // patch the placeholder word
      a.st32(cpu::kR3, 4, cpu::kR4);
      a.addi(cpu::kR5, cpu::kR5, u32{1});
      a.jmp(l("loop"));
      a.label("done");
      a.hlt();
    });
  };

  CpuHarness cached, uncached;
  build(cached);
  build(uncached);
  uncached.cpu.set_block_cache_enabled(false);
  ASSERT_EQ(cached.cpu.run(10000), cpu::RunExit::kHalted);
  ASSERT_EQ(uncached.cpu.run(10000), cpu::RunExit::kHalted);

  EXPECT_EQ(7u, cached.cpu.state().regs[2]) << "patched instr did not run";
  EXPECT_EQ(cached.cpu.state().regs, uncached.cpu.state().regs);
  EXPECT_EQ(cached.cpu.state().pc, uncached.cpu.state().pc);
  EXPECT_EQ(cached.cpu.cycles(), uncached.cpu.cycles());
  EXPECT_EQ(cached.cpu.stats().instructions,
            uncached.cpu.stats().instructions);
  EXPECT_GE(cached.cpu.stats().block_invalidations, 1u)
      << "stale block was not detected";
}

TEST(CpuDifferential, BreakpointPatchViaWriteVirtInvalidates) {
  // Debugger-style breakpoint patching: run a hot loop until its block is
  // cached, then rewrite the opcode of one loop instruction to kBrk through
  // Cpu::write_virt (the debug stub's code path for inserting breakpoints).
  // Both CPUs must take #BP at the same pc with identical state, and the
  // cached CPU must invalidate the stale block rather than execute it.
  auto build = [](CpuHarness& h) {
    h.load([](Assembler& a) {
      a.movi(cpu::kR0, l("idt"));
      a.lidt(cpu::kR0, 64);
      a.movi(cpu::kSp, u32{0x9000});
      a.movi(cpu::kR0, u32{0});
      a.label("loop");
      a.addi(cpu::kR0, cpu::kR0, u32{1});
      a.cmpi(cpu::kR0, u32{0x7fffffff});
      a.jnz(l("loop"));
      a.hlt();
      emit_test_idt(a);
    });
  };
  // The addi sits 4 instructions past the image base.
  const u32 patch_va = 0x1000 + 4 * cpu::kInstrBytes;

  CpuHarness cached, uncached;
  build(cached);
  build(uncached);
  uncached.cpu.set_block_cache_enabled(false);

  // Let the loop get hot (the cached rig builds and reuses its block).
  ASSERT_EQ(cached.cpu.run(5000), cpu::RunExit::kBudget);
  ASSERT_EQ(uncached.cpu.run(5000), cpu::RunExit::kBudget);
  ASSERT_EQ(cached.cpu.cycles(), uncached.cpu.cycles());
  ASSERT_EQ(cached.cpu.state().regs, uncached.cpu.state().regs);
  ASSERT_GT(cached.cpu.stats().block_hits, 0u);
  // The loop is long past the promotion threshold: the superblock tier must
  // be live (and self-chaining) before the patch lands.
  ASSERT_GT(cached.cpu.sbc_stats().translations, 0u);
  ASSERT_GT(cached.cpu.sbc_stats().chains, 0u);
  const u64 sb_invals_before = cached.cpu.sbc_stats().invalidations;

  // Patch the loop body's opcode to BRK on both rigs.
  const u8 brk_op = static_cast<u8>(Opcode::kBrk);
  ASSERT_TRUE(cached.cpu.write_virt(patch_va, {&brk_op, 1}));
  ASSERT_TRUE(uncached.cpu.write_virt(patch_va, {&brk_op, 1}));

  // Both must now take #BP: the test IDT records the event and halts.
  ASSERT_EQ(cached.cpu.run(5000), cpu::RunExit::kHalted);
  ASSERT_EQ(uncached.cpu.run(5000), cpu::RunExit::kHalted);

  const auto ra = read_trap_record(cached.mem);
  const auto rb = read_trap_record(uncached.mem);
  EXPECT_EQ(3u, ra.vector);  // #BP
  EXPECT_EQ(patch_va, ra.pc);
  EXPECT_EQ(ra.vector, rb.vector);
  EXPECT_EQ(ra.pc, rb.pc);
  EXPECT_EQ(ra.psw, rb.psw);
  EXPECT_EQ(ra.sp, rb.sp);
  EXPECT_EQ(cached.cpu.cycles(), uncached.cpu.cycles());
  EXPECT_EQ(cached.cpu.state().regs, uncached.cpu.state().regs);
  EXPECT_GE(cached.cpu.stats().block_invalidations, 1u);
  // The breakpoint patch must also have severed the stale superblock (and
  // its self-chain) rather than let the chained loop keep running the old
  // translation: write_virt goes through the eager invalidation hook.
  EXPECT_GT(cached.cpu.sbc_stats().invalidations, sb_invals_before);
  EXPECT_GT(cached.cpu.sbc_stats().unchains, 0u);

  // The explicit belt-and-braces API also drops blocks in both tiers.
  const u64 before = cached.cpu.stats().block_invalidations;
  cached.cpu.invalidate_block_cache();
  EXPECT_GT(cached.cpu.stats().block_invalidations, before);
}

TEST(CpuDifferential, SuperblockSmcGuestStoreSeversChainAndRetranslates) {
  // A hot self-chained loop whose body is patched by a guest store after it
  // has been promoted: the placeholder NOP becomes `movi r2, 7` for the
  // second hundred iterations. The superblock tier must detect the page
  // version bump, sever the loop's self-chain, retranslate, and end
  // bit-identical to the slow interpreter.
  Instr patch;
  patch.op = Opcode::kMovI;
  patch.rd = 2;
  patch.rs1 = 0;
  patch.rs2 = 0;
  patch.imm = 7;
  const auto enc = patch.encode();
  const u32 lo = u32(enc[0]) | (u32(enc[1]) << 8) | (u32(enc[2]) << 16) |
                 (u32(enc[3]) << 24);
  const u32 hi = u32(enc[4]) | (u32(enc[5]) << 8) | (u32(enc[6]) << 16) |
                 (u32(enc[7]) << 24);

  auto build = [&](CpuHarness& h) {
    h.load([&](Assembler& a) {
      a.movi(cpu::kR3, l("placeholder"));
      a.movi(cpu::kR1, u32{lo});
      a.movi(cpu::kR4, u32{hi});
      a.movi(cpu::kR0, u32{0});
      a.movi(cpu::kR5, u32{0});          // pass counter
      a.jmp(l("loop"));
      a.label("loop");
      a.label("placeholder");
      a.nop();                           // becomes `movi r2, 7` in pass 2
      a.addi(cpu::kR0, cpu::kR0, u32{1});
      a.cmpi(cpu::kR0, u32{100});
      a.jnz(l("loop"));                  // 100 hot iterations per pass
      a.cmpi(cpu::kR5, u32{1});
      a.jz(l("done"));
      a.st32(cpu::kR3, 0, cpu::kR1);     // guest store patches the loop body
      a.st32(cpu::kR3, 4, cpu::kR4);
      a.movi(cpu::kR0, u32{0});
      a.addi(cpu::kR5, cpu::kR5, u32{1});
      a.jmp(l("loop"));
      a.label("done");
      a.hlt();
    });
  };

  CpuHarness super, interp;
  build(super);
  build(interp);
  interp.cpu.set_block_cache_enabled(false);
  ASSERT_EQ(super.cpu.run(20000), cpu::RunExit::kHalted);
  ASSERT_EQ(interp.cpu.run(20000), cpu::RunExit::kHalted);

  EXPECT_EQ(7u, super.cpu.state().regs[2]) << "patched instr did not run";
  EXPECT_EQ(super.cpu.state().regs, interp.cpu.state().regs);
  EXPECT_EQ(super.cpu.state().pc, interp.cpu.state().pc);
  EXPECT_EQ(super.cpu.state().psw, interp.cpu.state().psw);
  EXPECT_EQ(super.cpu.cycles(), interp.cpu.cycles());
  EXPECT_EQ(super.cpu.stats().instructions, interp.cpu.stats().instructions);
  EXPECT_EQ(super.cpu.stats().mem_accesses, interp.cpu.stats().mem_accesses);
  EXPECT_EQ(super.cpu.mmu().tlb_hits(), interp.cpu.mmu().tlb_hits());

  const auto& sbc = super.cpu.sbc_stats();
  EXPECT_GE(sbc.translations, 2u) << "stale loop was not retranslated";
  EXPECT_GT(sbc.chains, 0u) << "hot loop never chained to itself";
  EXPECT_GE(sbc.invalidations, 1u) << "stale superblock was not dropped";
  EXPECT_GE(sbc.unchains, 1u) << "the self-chain edge was never severed";
}

TEST(CpuDifferential, PageBoundaryBlockChainsAcrossTheGuard) {
  // A loop whose body straddles a page boundary: the decoder cuts the first
  // block at the 4 KiB edge (a non-terminator tail, SbTail::kFallthrough)
  // and a second block continues on the next page. Both must be promoted
  // and chained — fall-through edge across the boundary, taken edge back —
  // so the loop runs chain-to-chain, and the whole thing must stay
  // bit-identical to the slow interpreter.
  auto build = [](CpuHarness& h) {
    h.load([](Assembler& a) {
      a.movi(cpu::kR0, u32{0});
      a.jmp(l("head"));
      // Pad so "head" sits two instructions before the 0x2000 page edge.
      while (a.here() < 0x2000 - 2 * cpu::kInstrBytes) a.nop();
      a.label("head");
      a.addi(cpu::kR0, cpu::kR0, u32{1});   // 0x1ff0
      a.xori(cpu::kR1, cpu::kR0, u32{0x55});  // 0x1ff8: last instr on page 1
      a.cmpi(cpu::kR0, u32{3000});          // 0x2000: first instr on page 2
      a.jnz(l("head"));
      a.hlt();
    });
  };

  CpuHarness super, interp;
  build(super);
  build(interp);
  interp.cpu.set_block_cache_enabled(false);
  ASSERT_EQ(super.cpu.run(100000), cpu::RunExit::kHalted);
  ASSERT_EQ(interp.cpu.run(100000), cpu::RunExit::kHalted);

  EXPECT_EQ(3000u, super.cpu.state().regs[0]);
  EXPECT_EQ(super.cpu.state().regs, interp.cpu.state().regs);
  EXPECT_EQ(super.cpu.cycles(), interp.cpu.cycles());
  EXPECT_EQ(super.cpu.stats().instructions, interp.cpu.stats().instructions);
  EXPECT_EQ(super.cpu.mmu().tlb_hits(), interp.cpu.mmu().tlb_hits());

  const auto& sbc = super.cpu.sbc_stats();
  EXPECT_GE(sbc.translations, 2u) << "both halves must be promoted";
  // Once both halves are promoted, every iteration follows two chain edges
  // (across the boundary and back); dispatcher entries should be rare.
  EXPECT_GT(sbc.chains, sbc.hits)
      << "the boundary-cut block did not chain (falls_through not honoured?)";
}

TEST(CpuDifferential, GenericTailSelfCallNeverSkipsTheChainGuard) {
  // Adversarial case for the fast-mode self-chain shortcut: a single-`call`
  // block whose taken edge points at itself. The block is "pure" (it has no
  // non-tail instructions at all) but its tail is generic and WRITES MEMORY
  // — each iteration pushes the return address and sp walks down, through a
  // neutral page and eventually into the code page itself, finally
  // overwriting the call's own immediate. The executor must not apply the
  // pure-body self-chain shortcut here (generic tails clear `fast`): every
  // re-entry must pass the full version guard, or the tier keeps executing
  // the stale translation after the pushes start landing on the code page
  // and diverges from the interpreter.
  auto build = [](CpuHarness& h) {
    h.load([](Assembler& a) {
      a.movi(cpu::kSp, u32{0x3000});
      a.label("self");
      a.call(l("self"));
    });
  };

  CpuHarness super, interp;
  build(super);
  build(interp);
  interp.cpu.set_block_cache_enabled(false);

  // One uninterrupted run: the whole descent — promote, self-chain, pushes
  // crossing into the code page, the immediate overwritten — happens without
  // a single return to the dispatcher, so only the executor's own chain
  // guard stands between a stale translation and divergence. (A sliced run
  // would mask the bug: every slice boundary re-enters through the
  // dispatcher, whose lookup drops stale translations eagerly.)
  const auto ra = super.cpu.run(60000);
  const auto rb = interp.cpu.run(60000);
  EXPECT_EQ(ra, rb);
  EXPECT_EQ(super.cpu.state().pc, interp.cpu.state().pc);
  EXPECT_EQ(super.cpu.state().regs, interp.cpu.state().regs);
  EXPECT_EQ(super.cpu.cycles(), interp.cpu.cycles());
  EXPECT_EQ(super.cpu.stats().instructions, interp.cpu.stats().instructions);
  EXPECT_EQ(super.cpu.stats().mem_accesses, interp.cpu.stats().mem_accesses);
  EXPECT_EQ(super.cpu.mmu().tlb_hits(), interp.cpu.mmu().tlb_hits());
  EXPECT_EQ(super.cpu.shutdown(), interp.cpu.shutdown());
  EXPECT_EQ(dump_mem(super.mem), dump_mem(interp.mem));

  EXPECT_GT(super.cpu.sbc_stats().chains, 0u)
      << "the call-to-self edge was never followed; the guarded path was "
         "not exercised";
  EXPECT_GT(super.cpu.sbc_stats().invalidations, 0u)
      << "pushes reaching the code page never dropped the translation";
}

}  // namespace
}  // namespace vdbg::test

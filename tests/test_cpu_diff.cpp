// Differential testing of the interpreter: random straight-line ALU/memory
// programs are executed both by the VX32 interpreter and by a tiny
// independent reference model of the ISA semantics; final register files
// and memory effects must agree exactly.
#include <gtest/gtest.h>

#include <array>

#include "common/rng.h"
#include "testutil.h"

namespace vdbg::test {
namespace {

using namespace vasm;
using cpu::Instr;
using cpu::Opcode;

/// Minimal independent model of the ALU/memory subset (written from the ISA
/// spec in isa.h, deliberately NOT sharing code with the interpreter).
struct RefModel {
  std::array<u32, 8> r{};
  std::map<u32, u32> mem;  // word-addressed sparse memory

  u32 load(u32 addr) const {
    auto it = mem.find(addr & ~3u);
    return it == mem.end() ? 0 : it->second;
  }
  void store(u32 addr, u32 v) { mem[addr & ~3u] = v; }

  void exec(const Instr& in) {
    const u32 a = r[in.rs1 & 7];
    const u32 b = r[in.rs2 & 7];
    auto& d = r[in.rd & 7];
    switch (in.op) {
      case Opcode::kMovI: d = in.imm; break;
      case Opcode::kMov: d = a; break;
      case Opcode::kAdd: d = a + b; break;
      case Opcode::kSub: d = a - b; break;
      case Opcode::kAnd: d = a & b; break;
      case Opcode::kOr: d = a | b; break;
      case Opcode::kXor: d = a ^ b; break;
      case Opcode::kShl: d = a << (b & 31); break;
      case Opcode::kShr: d = a >> (b & 31); break;
      case Opcode::kSar: d = u32(i32(a) >> (b & 31)); break;
      case Opcode::kMul: d = a * b; break;
      case Opcode::kAddI: d = a + in.imm; break;
      case Opcode::kSubI: d = a - in.imm; break;
      case Opcode::kAndI: d = a & in.imm; break;
      case Opcode::kOrI: d = a | in.imm; break;
      case Opcode::kXorI: d = a ^ in.imm; break;
      case Opcode::kShlI: d = a << (in.imm & 31); break;
      case Opcode::kShrI: d = a >> (in.imm & 31); break;
      case Opcode::kSarI: d = u32(i32(a) >> (in.imm & 31)); break;
      case Opcode::kMulI: d = a * in.imm; break;
      case Opcode::kLd32: d = load(a + in.imm); break;
      case Opcode::kSt32: store(a + in.imm, b); break;
      default: break;
    }
  }
};

// Scratch RAM the random programs may address: one aligned 4 KiB window.
constexpr u32 kScratch = 0x40000;

Instr random_instr(Rng& rng) {
  static const Opcode kOps[] = {
      Opcode::kMovI, Opcode::kMov,  Opcode::kAdd,  Opcode::kSub,
      Opcode::kAnd,  Opcode::kOr,   Opcode::kXor,  Opcode::kShl,
      Opcode::kShr,  Opcode::kSar,  Opcode::kMul,  Opcode::kAddI,
      Opcode::kSubI, Opcode::kAndI, Opcode::kOrI,  Opcode::kXorI,
      Opcode::kShlI, Opcode::kShrI, Opcode::kSarI, Opcode::kMulI,
      Opcode::kLd32, Opcode::kSt32};
  Instr in;
  in.op = kOps[rng.below(std::size(kOps))];
  // r7 (sp) excluded so the harness stack stays usable; r6 reserved as the
  // scratch-window base register.
  in.rd = static_cast<u8>(rng.below(6));
  in.rs1 = static_cast<u8>(rng.below(6));
  in.rs2 = static_cast<u8>(rng.below(6));
  in.imm = rng.next_u32();
  if (in.op == Opcode::kLd32 || in.op == Opcode::kSt32) {
    // Constrain the effective address: base = r6 (always kScratch),
    // displacement inside the window, word aligned.
    in.rs1 = 6;
    in.imm = static_cast<u32>(rng.below(1024)) * 4;
    if (in.op == Opcode::kSt32) in.rs2 = static_cast<u8>(rng.below(6));
  }
  return in;
}

TEST(CpuDifferential, RandomAluMemProgramsMatchReference) {
  Rng rng(20260705);
  for (int trial = 0; trial < 40; ++trial) {
    // Generate a straight-line program.
    std::vector<Instr> prog;
    const unsigned len = static_cast<unsigned>(rng.between(10, 120));
    for (unsigned i = 0; i < len; ++i) prog.push_back(random_instr(rng));

    // Run on the interpreter.
    CpuHarness h;
    h.load([&](Assembler& a) {
      a.movi(cpu::kR6, u32{kScratch});
      for (const auto& in : prog) {
        const auto bytes = in.encode();
        for (u8 byte : bytes) a.data8(byte);
      }
      a.hlt();
    });
    ASSERT_EQ(h.run(2000), cpu::RunExit::kHalted) << "trial " << trial;

    // Run on the reference model.
    RefModel ref;
    ref.r[6] = kScratch;
    for (const auto& in : prog) ref.exec(in);

    for (unsigned i = 0; i < 6; ++i) {
      EXPECT_EQ(h.cpu.state().regs[i], ref.r[i])
          << "trial " << trial << " r" << i;
    }
    EXPECT_EQ(h.cpu.state().regs[6], kScratch);
    for (const auto& [addr, val] : ref.mem) {
      EXPECT_EQ(h.mem.read32(addr), val)
          << "trial " << trial << " mem @" << std::hex << addr;
    }
  }
}

TEST(CpuDifferential, FlagSemanticsMatchTwoComplementIdentities) {
  // For random a,b: SUB sets C iff a<b (unsigned), Z iff a==b, and the
  // signed comparison (N!=V) iff (i32)a < (i32)b — checked through the
  // conditional-branch outcomes.
  Rng rng(777);
  for (int trial = 0; trial < 60; ++trial) {
    const u32 a = rng.next_u32();
    const u32 b = rng.chance(0.3) ? a : rng.next_u32();
    CpuHarness h;
    h.load([&](Assembler& asmr) {
      asmr.movi(cpu::kR1, u32{a});
      asmr.movi(cpu::kR2, u32{b});
      asmr.movi(cpu::kR0, u32{0});
      asmr.cmp(cpu::kR1, cpu::kR2);
      asmr.jb(l("below"));
      asmr.jmp(l("check_eq"));
      asmr.label("below");
      asmr.ori(cpu::kR0, cpu::kR0, u32{1});
      asmr.label("check_eq");
      asmr.cmp(cpu::kR1, cpu::kR2);
      asmr.jz(l("eq"));
      asmr.jmp(l("check_lt"));
      asmr.label("eq");
      asmr.ori(cpu::kR0, cpu::kR0, u32{2});
      asmr.label("check_lt");
      asmr.cmp(cpu::kR1, cpu::kR2);
      asmr.jl(l("lt"));
      asmr.hlt();
      asmr.label("lt");
      asmr.ori(cpu::kR0, cpu::kR0, u32{4});
      asmr.hlt();
    });
    ASSERT_EQ(h.run(100), cpu::RunExit::kHalted);
    const u32 expect = (a < b ? 1u : 0u) | (a == b ? 2u : 0u) |
                       (i32(a) < i32(b) ? 4u : 0u);
    EXPECT_EQ(h.reg(cpu::kR0), expect)
        << "trial " << trial << " a=" << a << " b=" << b;
  }
}

}  // namespace
}  // namespace vdbg::test

// Unit-level checks of the hosted full-VMM cost accounting: world switches,
// host syscalls, data copies through host buffers, send-combining batching.
#include <gtest/gtest.h>

#include "common/units.h"
#include "guest/layout.h"
#include "guest/minitactix.h"
#include "harness/platform.h"
#include "net/udp.h"

namespace vdbg::test {
namespace {

using guest::RunConfig;
using harness::Platform;
using harness::PlatformKind;
using harness::PlatformOptions;

TEST(HostedUnit, EveryDeviceTouchIsTrappedAndCharged) {
  RunConfig rc = RunConfig::for_rate_mbps(10.0);
  rc.stop_after_segments = 8;
  Platform p(PlatformKind::kHosted);
  p.prepare(rc);
  p.machine().run_until_stopped(seconds_to_cycles(3.0));

  auto* h = p.hosted();
  ASSERT_NE(h, nullptr);
  const auto& hs = h->hosted_stats();
  const auto& ex = h->exit_stats();
  // NIC doorbells + ISR accesses + SCSI programming all emulated.
  EXPECT_GT(hs.device_accesses, 8u * 2u);
  // Pre-send-combining behaviour: a world switch per access, plus the
  // interrupt round trips.
  EXPECT_GE(hs.world_switches, hs.device_accesses);
  EXPECT_GT(hs.host_syscalls, 0u);
  EXPECT_GT(hs.host_interrupts, 0u);
  EXPECT_GT(ex.io_emulated, hs.device_accesses - 1);
  EXPECT_EQ(ex.unknown_ports, 0u);
}

TEST(HostedUnit, CopiesCoverPacketsAndDiskPrefetch) {
  RunConfig rc = RunConfig::for_rate_mbps(10.0);
  rc.stop_after_segments = 8;
  Platform p(PlatformKind::kHosted);
  p.prepare(rc);
  p.machine().run_until_stopped(seconds_to_cycles(3.0));

  const auto& hs = p.hosted()->hosted_stats();
  // At least the first-wave 2 MiB prefetches (one per disk) went through
  // host buffers before the 8-segment run ended, plus the frames.
  const u64 disk_bytes = 3ull * rc.chunk_bytes;
  const u64 frame_bytes = 8ull * (rc.segment_bytes + net::kAllHeaderBytes + 4);
  EXPECT_GE(hs.bytes_copied, disk_bytes + frame_bytes);
  EXPECT_LE(hs.bytes_copied, 6ull * rc.chunk_bytes + frame_bytes * 4);
}

TEST(HostedUnit, SendCombiningReducesWorldSwitches) {
  auto run = [](bool switch_every_access) {
    RunConfig rc = RunConfig::for_rate_mbps(10.0);
    rc.stop_after_segments = 16;
    PlatformOptions opts;
    opts.hosted_costs.switch_on_every_access = switch_every_access;
    Platform p(PlatformKind::kHosted, opts);
    p.prepare(rc);
    p.machine().run_until_stopped(seconds_to_cycles(3.0));
    return p.hosted()->hosted_stats().world_switches;
  };
  const u64 per_access = run(true);
  const u64 batched = run(false);
  EXPECT_LT(batched, per_access / 2);
  EXPECT_GT(batched, 0u);
}

TEST(HostedUnit, GuestBehaviourIdenticalDespiteEmulation) {
  // The hosted VMM must be functionally transparent: same segment count,
  // same wire bytes, valid checksums — only slower.
  RunConfig rc = RunConfig::for_rate_mbps(10.0);
  rc.stop_after_segments = 12;
  Platform p(PlatformKind::kHosted);
  p.prepare(rc);
  p.sink().set_payload_validator(guest::make_stream_validator(rc));
  const auto stop = p.machine().run_until_stopped(seconds_to_cycles(3.0));
  EXPECT_EQ(stop, hw::Machine::StopReason::kGuestExit);
  p.machine().clear_guest_exit();
  p.machine().run_for(seconds_to_cycles(0.002));
  EXPECT_GE(p.sink().frames(), 12u);
  EXPECT_EQ(p.sink().checksum_errors(), 0u);
  EXPECT_EQ(p.sink().content_errors(), 0u);
  EXPECT_EQ(p.sink().sequence_gaps(), 0u);
  EXPECT_EQ(p.mailbox().last_error, 0u);
}

}  // namespace
}  // namespace vdbg::test

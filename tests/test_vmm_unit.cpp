// Monitor unit tests against small hand-built guests: privileged-instruction
// emulation, virtual IF/CPL/CR state, vPIC EOI <-> physical unmask coupling,
// injection semantics (DPL, stack switch, virtual PSW), guest IRET,
// double/triple fault containment and the guest-memory accessors.
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "common/units.h"
#include "guest/layout.h"
#include "hw/machine.h"
#include "vmm/lvmm.h"

namespace vdbg::test {
namespace {

using namespace vasm;
using cpu::kR0;
using cpu::kR1;
using cpu::kR2;
using cpu::kR3;
using cpu::kSp;
using vmm::Lvmm;

/// Machine + monitor harness running a custom tiny guest (paging off).
struct VmmRig {
  VmmRig() : machine(hw::MachineConfig{}) {
    Lvmm::Config mc;
    mc.monitor_base = guest::kMonitorBase;
    mc.monitor_len = machine.config().mem_bytes - guest::kMonitorBase;
    mc.guest_mem_limit = guest::kGuestMemBytes;
    mon = std::make_unique<Lvmm>(machine, mc);
  }

  void load(const std::function<void(Assembler&)>& emit) {
    Assembler a(0x10000);
    emit(a);
    prog = a.finalize();
    prog.load(machine.mem());
    machine.cpu().state().pc = 0x10000;
    mon->install();
  }

  /// Emits a minimal guest IDT: all vectors -> "trap" which records the
  /// vector marker and halts; plus LIDT setup code must be in the body.
  static void emit_idt(Assembler& a) {
    a.label("trap");
    a.movi(kR3, u32{0x600});
    a.ld32(kR2, kSp, 0);  // errcode
    a.st32(kR3, 4, kR2);
    a.ld32(kR2, kSp, 4);  // pc
    a.st32(kR3, 8, kR2);
    a.ld32(kR2, kSp, 8);  // vpsw
    a.st32(kR3, 12, kR2);
    a.movi(kR2, u32{0x7e57});
    a.st32(kR3, 0, kR2);
    a.hlt();
    a.align(8);
    a.label("idt");
    for (int v = 0; v < 64; ++v) {
      a.data_ref(l("trap"));
      a.data32(cpu::Gate{0, true, 3, 0}.pack_flags());
    }
  }

  u32 marker() { return machine.mem().read32(0x600); }

  hw::Machine machine;
  std::unique_ptr<Lvmm> mon;
  vasm::Program prog;
};

TEST(LvmmUnit, GuestStartsDeprivilegedWithIdentityPaging) {
  VmmRig rig;
  rig.load([](Assembler& a) {
    a.movi(kR0, u32{1});
    a.hlt();
  });
  EXPECT_EQ(rig.machine.cpu().state().cpl(), cpu::kRing1);
  EXPECT_TRUE(rig.machine.cpu().state().paging_enabled());  // physical PG on
  rig.machine.run_for(100000);
  EXPECT_EQ(rig.machine.cpu().state().regs[0], 1u);
  EXPECT_TRUE(rig.mon->vcpu().halted);
  EXPECT_GE(rig.mon->exit_stats().privileged_instr, 1u);  // the HLT
}

TEST(LvmmUnit, CliStiTrackVirtualIfNotPhysical) {
  VmmRig rig;
  rig.load([](Assembler& a) {
    a.cli();
    a.movi(kR0, u32{1});
    a.sti();
    a.movi(kR0, u32{2});
    a.hlt();
  });
  rig.machine.run_for(50000);
  EXPECT_EQ(rig.machine.cpu().state().regs[0], 2u);
  EXPECT_TRUE(rig.mon->vcpu().vif);
  EXPECT_TRUE(rig.machine.cpu().state().intr_enabled());  // physical IF stays on
}

TEST(LvmmUnit, CrAccessesAreVirtualised) {
  VmmRig rig;
  rig.load([](Assembler& a) {
    a.movi(kR1, u32{0x12345000});
    a.mov_to_cr(cpu::kCrKernelSp, kR1);
    a.mov_from_cr(kR2, cpu::kCrKernelSp);
    a.mov_from_cr(kR3, cpu::kCr0);  // guest sees ITS CR0 (paging off -> 0)
    a.hlt();
  });
  rig.machine.run_for(100000);
  EXPECT_EQ(rig.machine.cpu().state().regs[2], 0x12345000u);
  EXPECT_EQ(rig.machine.cpu().state().regs[3], 0u);  // vCR0, not physical
  EXPECT_EQ(rig.mon->vcpu().vcr[cpu::kCrKernelSp], 0x12345000u);
}

TEST(LvmmUnit, SoftIntReflectsThroughGuestIdtWithVirtualPsw) {
  VmmRig rig;
  rig.load([](Assembler& a) {
    a.movi(kSp, u32{0x20000});
    a.movi(kR0, l("idt"));
    a.lidt(kR0, 64);
    a.sti();
    a.int_(0x21);
    a.brk();  // not reached
    VmmRig::emit_idt(a);
  });
  rig.machine.run_for(300000);
  EXPECT_EQ(rig.marker(), 0x7e57u);
  // vPSW in the frame shows vCPL0 and vIF set.
  const u32 vpsw = rig.machine.mem().read32(0x60c);
  EXPECT_EQ(vpsw & cpu::Psw::kCplMask, 0u);
  EXPECT_TRUE(vpsw & cpu::Psw::kIf);
  EXPECT_EQ(rig.mon->exit_stats().soft_ints, 1u);
  // Handler entered with vIF cleared.
  EXPECT_FALSE(rig.mon->vcpu().vif);
}

TEST(LvmmUnit, GuestIretRestoresVirtualState) {
  VmmRig rig;
  rig.load([](Assembler& a) {
    a.movi(kSp, u32{0x20000});
    a.movi(kR0, l("idt2"));
    a.lidt(kR0, 64);
    a.sti();
    a.int_(0x20);
    a.movi(kR1, u32{0xAAA});  // resumed here after handler IRET
    a.hlt();
    a.label("handler");
    a.movi(kR2, u32{0xBBB});
    a.iret();
    a.align(8);
    a.label("idt2");
    for (int v = 0; v < 64; ++v) {
      a.data_ref(l("handler"));
      a.data32(cpu::Gate{0, true, 3, 0}.pack_flags());
    }
  });
  rig.machine.run_for(400000);
  EXPECT_EQ(rig.machine.cpu().state().regs[1], 0xAAAu);
  EXPECT_EQ(rig.machine.cpu().state().regs[2], 0xBBBu);
  EXPECT_TRUE(rig.mon->vcpu().vif);  // restored by IRET
  EXPECT_TRUE(rig.mon->vcpu().halted);
}

TEST(LvmmUnit, MissingGateEscalatesToVirtualTripleFault) {
  VmmRig rig;
  rig.load([](Assembler& a) {
    a.int_(0x21);  // no LIDT at all: vidt_count == 0
    a.hlt();
  });
  rig.machine.run_for(100000);
  EXPECT_TRUE(rig.mon->vcpu().crashed);
  EXPECT_FALSE(rig.machine.cpu().shutdown());
  EXPECT_TRUE(rig.mon->monitor_memory_intact());
}

TEST(LvmmUnit, UnknownPortsAreHarmless) {
  VmmRig rig;
  rig.load([](Assembler& a) {
    a.in(kR0, 0x7777);
    a.movi(kR1, u32{0x55});
    a.out(0x7777, kR1);
    a.hlt();
  });
  rig.machine.run_for(100000);
  EXPECT_EQ(rig.machine.cpu().state().regs[0], 0xffffffffu);
  EXPECT_EQ(rig.mon->exit_stats().unknown_ports, 2u);
  EXPECT_TRUE(rig.mon->vcpu().halted);  // guest lived on
}

TEST(LvmmUnit, VpicEoiUnmasksPhysicalLine) {
  VmmRig rig;
  rig.load([](Assembler& a) {
    // Program the vPIC (ICW + unmask all), set IDT, enable, halt.
    auto outb = [&](u16 port, u32 v) {
      a.movi(kR0, u32{v});
      a.out(port, kR0);
    };
    a.movi(kSp, u32{0x20000});
    outb(0x20, 0x11);
    outb(0x21, 0x20);
    outb(0x21, 0x04);
    outb(0x21, 0x01);
    outb(0x21, 0x00);  // unmask all on master
    a.movi(kR0, l("idt3"));
    a.lidt(kR0, 64);
    a.sti();
    a.label("idle");
    a.hlt();
    a.jmp(l("idle"));
    a.label("tick_isr");
    a.movi(kR3, u32{0x700});
    a.ld32(kR2, kR3, 0);
    a.addi(kR2, kR2, u32{1});
    a.st32(kR3, 0, kR2);
    a.movi(kR0, u32{0x20});
    a.out(0x20, kR0);  // vPIC EOI -> monitor unmasks the physical line
    a.iret();
    a.align(8);
    a.label("idt3");
    for (int v = 0; v < 64; ++v) {
      a.data_ref(l("tick_isr"));
      a.data32(cpu::Gate{0, true, 0, 0}.pack_flags());
    }
  });
  // Drive the physical PIT by hand: 1 kHz.
  rig.machine.pit().io_write(3, 0x34);
  rig.machine.pit().io_write(0, 0xa9);
  rig.machine.pit().io_write(0, 0x04);
  rig.machine.run_for(seconds_to_cycles(0.01));
  const u32 ticks_seen = rig.machine.mem().read32(0x700);
  EXPECT_GE(ticks_seen, 8u);  // repeated delivery proves unmasking works
  EXPECT_LE(ticks_seen, 12u);
  EXPECT_GE(rig.mon->exit_stats().injections, 8u);
}

TEST(LvmmUnit, GuestMemoryAccessorsSpanPages) {
  VmmRig rig;
  rig.load([](Assembler& a) { a.hlt(); });
  std::vector<u8> data(cpu::kPageSize + 100);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<u8>(i * 3);
  }
  ASSERT_TRUE(rig.mon->guest_write(0x30f80, data));  // crosses a page
  std::vector<u8> back(data.size());
  ASSERT_TRUE(rig.mon->guest_read(0x30f80, back));
  EXPECT_EQ(back, data);
  // Beyond guest RAM is refused.
  u32 dummy = 0;
  EXPECT_FALSE(rig.mon->guest_read32(guest::kGuestMemBytes + 0x100, dummy));
  EXPECT_FALSE(rig.mon->guest_write32(guest::kGuestMemBytes + 0x100, 1));
}

TEST(LvmmUnit, ChargedCyclesAccumulateInStats) {
  VmmRig rig;
  rig.load([](Assembler& a) {
    a.cli();
    a.sti();
    a.hlt();
  });
  rig.machine.run_for(100000);
  const auto& ex = rig.mon->exit_stats();
  EXPECT_GE(ex.total, 3u);
  EXPECT_GT(ex.charged_cycles, ex.total * 1000);  // exit_base dominates
}

TEST(LvmmUnit, ReflectedGpFromUserPrivilegedInstruction) {
  VmmRig rig;
  rig.load([](Assembler& a) {
    a.movi(kSp, u32{0x20000});
    a.movi(kR0, l("idt"));
    a.lidt(kR0, 64);
    a.movi(kR0, u32{0x30000});
    a.mov_to_cr(cpu::kCrMonitorSp, kR0);
    a.sti();
    // Drop to vCPL3.
    a.movi(kR0, u32{0x40000});
    a.push(kR0);
    a.movi(kR0, u32{3 | cpu::Psw::kIf});
    a.push(kR0);
    a.movi(kR0, l("user"));
    a.push(kR0);
    a.movi(kR0, u32{0});
    a.push(kR0);
    a.iret();
    a.label("user");
    a.cli();  // privileged at vCPL3 -> guest-visible #GP
    a.brk();
    VmmRig::emit_idt(a);
  });
  rig.machine.run_for(400000);
  EXPECT_EQ(rig.marker(), 0x7e57u);
  // Frame's vPSW shows the interrupted context was vCPL3.
  const u32 vpsw = rig.machine.mem().read32(0x60c);
  EXPECT_EQ(vpsw & cpu::Psw::kCplMask, 3u);
  EXPECT_GE(rig.mon->exit_stats().reflected_faults, 1u);
}

TEST(LvmmUnit, PhysicalRingMatchesVirtualPrivilege) {
  EXPECT_EQ(vmm::VcpuState::physical_ring(0), cpu::kRing1);
  EXPECT_EQ(vmm::VcpuState::physical_ring(3), cpu::kRing3);
}

}  // namespace
}  // namespace vdbg::test

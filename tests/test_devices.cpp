// Device-model unit tests: port router, PIC pair, PIT, UART, SCSI disks,
// NIC and the diagnostic port, each driven through its register interface.
#include <gtest/gtest.h>

#include "common/units.h"
#include "hw/diag_port.h"
#include "hw/io_bus.h"
#include "hw/machine.h"
#include "hw/nic.h"
#include "hw/pic.h"
#include "hw/pit.h"
#include "hw/scsi_disk.h"
#include "hw/uart.h"
#include "net/udp.h"

namespace vdbg::test {
namespace {

using namespace hw;

// ------------------------------------------------------------- io router --
struct CountingDev final : IoDevice {
  u32 io_read(u16 offset) override {
    last_read = offset;
    return 0x11110000u | offset;
  }
  void io_write(u16 offset, u32 value) override {
    last_write = offset;
    last_value = value;
  }
  u16 last_read = 0xffff, last_write = 0xffff;
  u32 last_value = 0;
};

TEST(PortRouter, RoutesWithRelativeOffsets) {
  PortRouter r;
  CountingDev a, b;
  r.map(0x100, 0x10, &a);
  r.map(0x200, 0x10, &b);
  EXPECT_EQ(r.io_read(0x105), 0x11110005u);
  EXPECT_EQ(a.last_read, 5);
  r.io_write(0x20f, 42);
  EXPECT_EQ(b.last_write, 0xf);
  EXPECT_EQ(b.last_value, 42u);
}

TEST(PortRouter, UnmappedPortsFloat) {
  PortRouter r;
  EXPECT_EQ(r.io_read(0x555), 0xffffffffu);
  r.io_write(0x555, 1);  // dropped, no crash
}

TEST(PortRouter, RejectsOverlaps) {
  PortRouter r;
  CountingDev a, b;
  r.map(0x100, 0x10, &a);
  EXPECT_THROW(r.map(0x10f, 0x10, &b), std::invalid_argument);
  EXPECT_THROW(r.map(0x0f8, 0x10, &b), std::invalid_argument);
  r.map(0x110, 0x10, &b);  // adjacent is fine
}

TEST(PortRouter, DeviceAtFindsOwner) {
  PortRouter r;
  CountingDev a;
  r.map(0x100, 0x10, &a);
  EXPECT_EQ(r.device_at(0x100), &a);
  EXPECT_EQ(r.device_at(0x10f), &a);
  EXPECT_EQ(r.device_at(0x110), nullptr);
}

// ------------------------------------------------------------------- pic --
struct PicRig {
  PicRig() {
    // Standard ICW sequence, offsets 0x20/0x28, all unmasked.
    auto& m = pic.master_ports();
    auto& s = pic.slave_ports();
    m.io_write(0, 0x11);
    m.io_write(1, 0x20);
    m.io_write(1, 0x04);
    m.io_write(1, 0x01);
    s.io_write(0, 0x11);
    s.io_write(1, 0x28);
    s.io_write(1, 0x02);
    s.io_write(1, 0x01);
    m.io_write(1, 0x00);
    s.io_write(1, 0x00);
  }
  Pic pic;
};

TEST(Pic, LevelInterruptDeliversProgrammedVector) {
  PicRig rig;
  EXPECT_FALSE(rig.pic.intr_asserted());
  rig.pic.set_irq_level(5, true);
  ASSERT_TRUE(rig.pic.intr_asserted());
  EXPECT_EQ(rig.pic.acknowledge(), 0x25);
  // Level still asserted but in-service blocks re-delivery until EOI.
  EXPECT_FALSE(rig.pic.intr_asserted());
  rig.pic.set_irq_level(5, false);
  rig.pic.master_ports().io_write(0, 0x20);  // EOI
  EXPECT_FALSE(rig.pic.intr_asserted());
}

TEST(Pic, EdgePulseLatchesUntilAck) {
  PicRig rig;
  rig.pic.pulse_irq(0);
  ASSERT_TRUE(rig.pic.intr_asserted());
  EXPECT_EQ(rig.pic.acknowledge(), 0x20);
  rig.pic.master_ports().io_write(0, 0x20);
  EXPECT_FALSE(rig.pic.intr_asserted());  // pulse consumed
}

TEST(Pic, PriorityLowestIrqWins) {
  PicRig rig;
  rig.pic.pulse_irq(5);
  rig.pic.pulse_irq(0);
  EXPECT_EQ(rig.pic.acknowledge(), 0x20);  // IRQ0 first
  rig.pic.master_ports().io_write(0, 0x20);
  EXPECT_EQ(rig.pic.acknowledge(), 0x25);
}

TEST(Pic, InServiceBlocksLowerPriorityUntilEoi) {
  PicRig rig;
  rig.pic.pulse_irq(3);
  EXPECT_EQ(rig.pic.acknowledge(), 0x23);
  rig.pic.pulse_irq(5);  // lower priority than in-service 3
  EXPECT_FALSE(rig.pic.intr_asserted());
  rig.pic.pulse_irq(1);  // higher priority preempts
  EXPECT_TRUE(rig.pic.intr_asserted());
  EXPECT_EQ(rig.pic.acknowledge(), 0x21);
  rig.pic.master_ports().io_write(0, 0x20);  // EOI IRQ1
  rig.pic.master_ports().io_write(0, 0x20);  // EOI IRQ3
  EXPECT_EQ(rig.pic.acknowledge(), 0x25);
}

TEST(Pic, MaskSuppressesDelivery) {
  PicRig rig;
  rig.pic.master_ports().io_write(1, 1u << 5);  // mask IRQ5
  rig.pic.set_irq_level(5, true);
  EXPECT_FALSE(rig.pic.intr_asserted());
  rig.pic.master_ports().io_write(1, 0x00);  // unmask
  EXPECT_TRUE(rig.pic.intr_asserted());
}

TEST(Pic, CascadeDeliversSlaveVectors) {
  PicRig rig;
  rig.pic.set_irq_level(10, true);
  ASSERT_TRUE(rig.pic.intr_asserted());
  EXPECT_EQ(rig.pic.acknowledge(), 0x2a);
  // Slave EOI then master EOI, classic order.
  rig.pic.set_irq_level(10, false);
  rig.pic.slave_ports().io_write(0, 0x20);
  rig.pic.master_ports().io_write(0, 0x20);
  EXPECT_FALSE(rig.pic.intr_asserted());
  EXPECT_EQ(rig.pic.isr(false), 0);
  EXPECT_EQ(rig.pic.isr(true), 0);
}

TEST(Pic, SpecificEoiClearsNamedIrq) {
  PicRig rig;
  rig.pic.pulse_irq(4);
  rig.pic.acknowledge();
  EXPECT_EQ(rig.pic.isr(false), 1u << 4);
  rig.pic.master_ports().io_write(0, 0x60 | 4);
  EXPECT_EQ(rig.pic.isr(false), 0);
}

TEST(Pic, Ocw3SelectsIsrOrIrrReadback) {
  PicRig rig;
  rig.pic.set_irq_level(2, true);  // cascade line, but readable in IRR
  rig.pic.master_ports().io_write(0, 0x0a);  // read IRR
  EXPECT_TRUE(rig.pic.master_ports().io_read(0) & (1u << 2));
  rig.pic.master_ports().io_write(0, 0x0b);  // read ISR
  EXPECT_EQ(rig.pic.master_ports().io_read(0), 0u);
}

TEST(Pic, MasksReadableOnDataPort) {
  PicRig rig;
  rig.pic.master_ports().io_write(1, 0xa5);
  EXPECT_EQ(rig.pic.master_ports().io_read(1), 0xa5u);
}

// ---------------------------------------------------------------- pit ----
struct TickRig : Clock {
  TickRig() : pit(eq, *this, pic) {}
  Cycles now() const override { return t; }
  void advance(Cycles d) {
    t += d;
    eq.run_until(t);
  }
  EventQueue eq;
  Pic pic;  // default construction: offsets 0x20/0x28, masked
  Cycles t = 0;
  Pit pit;
};

TEST(Pit, ProgrammedDivisorSetsTickRate) {
  TickRig rig;
  rig.pit.io_write(3, 0x34);  // control: ch0 lo/hi mode 2
  rig.pit.io_write(0, 0xa9);  // 1193 -> ~1 kHz
  rig.pit.io_write(0, 0x04);
  EXPECT_TRUE(rig.pit.running());
  EXPECT_EQ(rig.pit.divisor(), 1193u);
  rig.advance(seconds_to_cycles(0.1));
  EXPECT_NEAR(double(rig.pit.ticks_fired()), 100.0, 2.0);
}

TEST(Pit, ReprogrammingChangesRate) {
  TickRig rig;
  rig.pit.io_write(3, 0x34);
  rig.pit.io_write(0, 0xa9);
  rig.pit.io_write(0, 0x04);
  rig.advance(seconds_to_cycles(0.01));
  const u64 before = rig.pit.ticks_fired();
  rig.pit.io_write(3, 0x34);  // 2386 -> ~500 Hz
  rig.pit.io_write(0, 0x52);
  rig.pit.io_write(0, 0x09);
  rig.advance(seconds_to_cycles(0.1));
  EXPECT_NEAR(double(rig.pit.ticks_fired() - before), 50.0, 2.0);
}

TEST(Pit, ZeroDivisorMeans65536) {
  TickRig rig;
  rig.pit.io_write(3, 0x34);
  rig.pit.io_write(0, 0x00);
  rig.pit.io_write(0, 0x00);
  EXPECT_EQ(rig.pit.divisor(), 0x10000u);
}

TEST(Pit, PulsesIrq0) {
  TickRig rig;
  // Unmask IRQ0 on the default-constructed PIC.
  rig.pic.master_ports().io_write(1, 0xfe);
  rig.pit.io_write(3, 0x34);
  rig.pit.io_write(0, 0xa9);
  rig.pit.io_write(0, 0x04);
  rig.advance(seconds_to_cycles(0.002));
  EXPECT_TRUE(rig.pic.intr_asserted());
  EXPECT_EQ(rig.pic.acknowledge(), rig.pic.vector_offset(false) + 0);
}

// ---------------------------------------------------------------- uart ---
struct UartRig : Clock {
  UartRig() : uart(eq, *this, pic, Uart::Config{100, 16}) {
    pic.master_ports().io_write(1, static_cast<u8>(~(1u << kUartIrq)));
    uart.set_tx_sink([this](u8 b) { host_rx.push_back(b); });
  }
  Cycles now() const override { return t; }
  void advance(Cycles d) {
    t += d;
    eq.run_until(t);
  }
  EventQueue eq;
  Pic pic;
  Cycles t = 0;
  Uart uart;
  std::vector<u8> host_rx;
};

TEST(Uart, TransmitSerialisesBytesToHost) {
  UartRig rig;
  rig.uart.io_write(0, 'h');
  rig.uart.io_write(0, 'i');
  EXPECT_TRUE(rig.host_rx.empty());  // still serialising
  rig.advance(250);
  EXPECT_EQ(rig.host_rx.size(), 2u);
  EXPECT_EQ(rig.host_rx[0], 'h');
  EXPECT_EQ(rig.host_rx[1], 'i');
}

TEST(Uart, ReceivePathRaisesIrqWhenEnabled) {
  UartRig rig;
  rig.uart.host_inject(u8{'x'});
  EXPECT_FALSE(rig.pic.intr_asserted());  // IER off
  rig.uart.io_write(1, 0x01);
  EXPECT_TRUE(rig.pic.intr_asserted());
  EXPECT_TRUE(rig.uart.io_read(5) & 0x01);  // LSR.DR
  EXPECT_EQ(rig.uart.io_read(0), 'x');
  EXPECT_FALSE(rig.uart.io_read(5) & 0x01);
  // Draining RBR deasserts.
  rig.pic.acknowledge();  // take it off the line for good measure
}

TEST(Uart, LsrThreReflectsFifoSpace) {
  UartRig rig;
  EXPECT_TRUE(rig.uart.io_read(5) & 0x20);  // THRE: room
  EXPECT_TRUE(rig.uart.io_read(5) & 0x40);  // TEMT: idle
  // First byte moves straight into the shift register; 16 more fill the
  // FIFO completely.
  for (int i = 0; i < 17; ++i) rig.uart.io_write(0, u8(i));
  EXPECT_FALSE(rig.uart.io_read(5) & 0x20);  // FIFO full
  rig.advance(100 * 18);
  EXPECT_TRUE(rig.uart.io_read(5) & 0x40);
  EXPECT_EQ(rig.host_rx.size(), 17u);
}

TEST(Uart, OverflowingTxFifoDropsBytes) {
  UartRig rig;
  for (int i = 0; i < 40; ++i) rig.uart.io_write(0, u8(i));
  rig.advance(100 * 50);
  // 16 FIFO + 1 in the shift register survive.
  EXPECT_EQ(rig.host_rx.size(), 17u);
}

TEST(Uart, ThreInterruptFiresOnceDrained) {
  UartRig rig;
  rig.uart.io_write(1, 0x02);  // THRE interrupt only
  rig.uart.io_write(0, 'a');
  rig.advance(250);
  EXPECT_TRUE(rig.pic.intr_asserted());
  EXPECT_EQ(rig.uart.io_read(2), 0x02u);  // IIR: THRE source, read clears
  EXPECT_FALSE(rig.pic.intr_asserted());
}

TEST(Uart, StringInjectQueuesAll) {
  UartRig rig;
  rig.uart.host_inject(std::string_view("$g#67"));
  std::string got;
  while (rig.uart.io_read(5) & 1) {
    got.push_back(static_cast<char>(rig.uart.io_read(0)));
  }
  EXPECT_EQ(got, "$g#67");
}

// ---------------------------------------------------------------- scsi ---
struct ScsiRig : Clock {
  ScsiRig()
      : mem(16 * 1024 * 1024),
        disk(0, eq, *this, pic, kScsiIrq0, mem, ScsiDisk::Config{}) {
    pic.slave_ports().io_write(1, 0x00);
    pic.master_ports().io_write(1, 0x00);
  }
  Cycles now() const override { return t; }
  void advance(Cycles d) {
    t += d;
    eq.run_until(t);
  }
  void request(u32 lba, u32 sectors, u32 dest, PAddr block = 0x1000) {
    mem.write32(block + 0, lba);
    mem.write32(block + 4, sectors);
    mem.write32(block + 8, dest);
    mem.write32(block + 12, 0xffffffff);
    disk.io_write(0x00, block);
    disk.io_write(0x04, 1);
  }
  EventQueue eq;
  Pic pic;
  cpu::PhysMem mem;
  Cycles t = 0;
  ScsiDisk disk;
};

TEST(Scsi, ReadDeliversDeterministicPattern) {
  ScsiRig rig;
  rig.request(100, 4, 0x8000);
  EXPECT_TRUE(rig.disk.busy());
  rig.advance(seconds_to_cycles(0.01));
  EXPECT_FALSE(rig.disk.busy());
  EXPECT_EQ(rig.disk.io_read(0x08), 1u);  // completion pending
  EXPECT_EQ(rig.disk.io_read(0x0c), u32{ScsiDisk::kOk});
  EXPECT_EQ(rig.mem.read32(0x1000 + 12), u32{ScsiDisk::kOk});
  // Content matches the generator at every probed offset.
  for (u32 off : {0u, 1u, 511u, 512u, 2047u}) {
    EXPECT_EQ(rig.mem.read8(0x8000 + off),
              ScsiDisk::pattern_byte(0, 100 + off / 512, off % 512));
  }
  EXPECT_TRUE(rig.pic.intr_asserted());
  rig.disk.io_write(0x08, 1);  // ack deasserts
  EXPECT_FALSE(rig.pic.intr_asserted());
}

TEST(Scsi, TransferTimeMatchesChannelRate) {
  ScsiRig rig;
  const u32 sectors = 4096;  // 2 MiB
  rig.request(0, sectors, 0x100000);
  // At 160 MB/s, 2 MiB takes ~13.1 ms plus command overhead.
  rig.advance(seconds_to_cycles(0.0130));
  EXPECT_TRUE(rig.disk.busy());
  rig.advance(seconds_to_cycles(0.0005));
  EXPECT_FALSE(rig.disk.busy());
}

TEST(Scsi, RejectsBadRequests) {
  ScsiRig rig;
  rig.request(0, 0, 0x8000);  // zero length
  EXPECT_EQ(rig.disk.io_read(0x0c), u32{ScsiDisk::kBadRequest});
  rig.disk.io_write(0x08, 1);
  rig.request(0xffffffff, 4, 0x8000);  // LBA beyond capacity
  EXPECT_EQ(rig.disk.io_read(0x0c), u32{ScsiDisk::kBadRequest});
  rig.request(0, 4, 0x8001);  // unaligned destination
  EXPECT_EQ(rig.disk.io_read(0x0c), u32{ScsiDisk::kBadRequest});
}

TEST(Scsi, RejectsDmaBeyondRamAndIntoProtected) {
  ScsiRig rig;
  rig.request(0, 4, 0xfff000);  // partially beyond 16 MiB RAM? in range...
  rig.advance(seconds_to_cycles(0.01));
  rig.disk.io_write(0x08, 1);
  rig.request(0, 64, 0xfff000);  // 32 KiB from 0xfff000 exceeds 16 MiB
  EXPECT_EQ(rig.disk.io_read(0x0c), u32{ScsiDisk::kDmaError});
  rig.mem.add_protected_range(0x200000, 0x1000);
  rig.request(0, 4, 0x200000);
  EXPECT_EQ(rig.disk.io_read(0x0c), u32{ScsiDisk::kDmaError});
}

TEST(Scsi, DoorbellWhileBusyReportsBusy) {
  ScsiRig rig;
  rig.request(0, 4, 0x8000);
  rig.disk.io_write(0x04, 1);  // second doorbell mid-flight
  EXPECT_EQ(rig.disk.io_read(0x0c), u32{ScsiDisk::kBusy});
  rig.advance(seconds_to_cycles(0.01));
  EXPECT_EQ(rig.disk.io_read(0x0c), u32{ScsiDisk::kOk});  // original done
}

// ----------------------------------------------------------------- nic ---
struct NicRig : Clock {
  NicRig() : mem(8 * 1024 * 1024), nic(eq, *this, pic, mem, Nic::Config{}) {
    pic.master_ports().io_write(1, 0x00);
    nic.set_wire_sink([this](std::span<const u8> f, Cycles) {
      frames.emplace_back(f.begin(), f.end());
    });
    nic.io_write(0x00, kRing);
    nic.io_write(0x04, 8);
    nic.io_write(0x14, 1);  // IMR
  }
  Cycles now() const override { return t; }
  void advance(Cycles d) {
    t += d;
    eq.run_until(t);
  }
  void put_desc(u32 index, u32 buf, u32 len, u32 flags) {
    const PAddr da = kRing + (index % 8) * kNicDescBytes;
    mem.write32(da + 0, buf);
    mem.write32(da + 4, len);
    mem.write32(da + 8, flags);
    mem.write32(da + 12, 0);
  }
  u32 desc_status(u32 index) const {
    return mem.read32(kRing + (index % 8) * kNicDescBytes + 12);
  }

  static constexpr PAddr kRing = 0x4000;
  EventQueue eq;
  Pic pic;
  cpu::PhysMem mem;
  Cycles t = 0;
  Nic nic;
  std::vector<std::vector<u8>> frames;
};

TEST(Nic, TransmitsQueuedFramesInOrder) {
  NicRig rig;
  for (u32 i = 0; i < 3; ++i) {
    for (u32 j = 0; j < 64; ++j) {
      rig.mem.write8(0x8000 + i * 64 + j, static_cast<u8>(i * 100 + j));
    }
    rig.put_desc(i, 0x8000 + i * 64, 64, NicDescFlags::kIrqOnComplete);
  }
  rig.nic.io_write(0x08, 3);  // tail doorbell
  rig.advance(seconds_to_cycles(0.001));
  ASSERT_EQ(rig.frames.size(), 3u);
  EXPECT_EQ(rig.frames[1][0], 100);
  EXPECT_EQ(rig.nic.io_read(0x0c), 3u);  // head
  EXPECT_EQ(rig.desc_status(0), 1u);
  EXPECT_TRUE(rig.pic.intr_asserted());
  rig.nic.io_write(0x10, 1);  // ISR ack
  EXPECT_FALSE(rig.pic.intr_asserted());
}

TEST(Nic, LineRatePacesTransmission) {
  NicRig rig;
  // A 1250-byte frame ~ (1250+24)*8 bits at 1 Gbps = ~10.2 us.
  rig.put_desc(0, 0x8000, 1250, 0);
  rig.nic.io_write(0x08, 1);
  rig.advance(seconds_to_cycles(9e-6));
  EXPECT_TRUE(rig.frames.empty());
  rig.advance(seconds_to_cycles(2e-6));
  EXPECT_EQ(rig.frames.size(), 1u);
}

TEST(Nic, RingWrapsWithFreeRunningIndices) {
  NicRig rig;
  u32 tail = 0;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 5; ++i) {
      rig.put_desc(tail, 0x8000, 64, 0);
      ++tail;
    }
    rig.nic.io_write(0x08, tail);
    rig.advance(seconds_to_cycles(0.001));
  }
  EXPECT_EQ(rig.frames.size(), 20u);
  EXPECT_EQ(rig.nic.io_read(0x0c), 20u);
}

TEST(Nic, BadDescriptorCompletesWithErrorAndContinues) {
  NicRig rig;
  rig.put_desc(0, 0x7f00000, 64, 0);  // buffer out of range
  rig.put_desc(1, 0x8000, 64, NicDescFlags::kIrqOnComplete);
  rig.nic.io_write(0x08, 2);
  rig.advance(seconds_to_cycles(0.001));
  EXPECT_EQ(rig.desc_status(0), 2u);
  EXPECT_EQ(rig.desc_status(1), 1u);
  EXPECT_EQ(rig.frames.size(), 1u);
  EXPECT_EQ(rig.nic.errors(), 1u);
  EXPECT_TRUE(rig.nic.io_read(0x10) & 2u);  // error bit latched in ISR
}

TEST(Nic, ZeroLengthRejected) {
  NicRig rig;
  rig.put_desc(0, 0x8000, 0, 0);
  rig.nic.io_write(0x08, 1);
  rig.advance(seconds_to_cycles(0.001));
  EXPECT_EQ(rig.desc_status(0), 2u);
}

net::FlowSpec test_flow() {
  net::FlowSpec f;
  f.src_mac = {1, 2, 3, 4, 5, 6};
  f.dst_mac = {7, 8, 9, 10, 11, 12};
  f.src_ip = 0x0a000001;
  f.dst_ip = 0x0a000002;
  f.src_port = 1000;
  f.dst_port = 2000;
  return f;
}

TEST(Nic, ChecksumOffloadFixesUdpChecksum) {
  NicRig rig;
  // Build a UDP frame with a ZERO checksum, ask the NIC to offload.
  net::FlowSpec flow = test_flow();
  std::vector<u8> payload(64, 0xab);
  auto frame = net::build_frame(flow, payload);
  frame[net::kEthHeaderBytes + net::kIpHeaderBytes + 6] = 0;  // zap checksum
  frame[net::kEthHeaderBytes + net::kIpHeaderBytes + 7] = 0;
  rig.mem.write_block(0x8000, frame);
  rig.put_desc(0, 0x8000, static_cast<u32>(frame.size()),
               NicDescFlags::kChecksumOffload);
  rig.nic.io_write(0x08, 1);
  rig.advance(seconds_to_cycles(0.001));
  ASSERT_EQ(rig.frames.size(), 1u);
  const auto parsed = net::parse_frame(rig.frames[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->udp_checksum_present);
  EXPECT_TRUE(parsed->udp_checksum_ok);
}

// ---------------------------------------------------------------- diag ---
TEST(DiagPort, CollectsTextValuesAndExit) {
  DiagPort d;
  for (char c : std::string("ok")) d.io_write(0x09, static_cast<u8>(c));
  d.io_write(0x10, 42);
  u32 exit_code = 0;
  d.set_exit_fn([&](u32 v) { exit_code = v; });
  d.io_write(0x14, 0x600d);
  EXPECT_EQ(d.text(), "ok");
  EXPECT_EQ(d.values(), (std::vector<u32>{42}));
  EXPECT_EQ(exit_code, 0x600du);
  d.set_host_value(7);
  EXPECT_EQ(d.io_read(0x10), 7u);
}

}  // namespace
}  // namespace vdbg::test

// Machine-loop unit tests: run_for budget semantics, idle accounting and
// the CPU-load probe, event/CPU interleaving (including mid-slice
// preemption by newly scheduled events), freeze service, guest exit and
// deadlock detection.
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "common/units.h"
#include "hw/machine.h"

namespace vdbg::test {
namespace {

using namespace vasm;
using cpu::kR0;
using cpu::kR1;
using hw::Machine;

Machine make_machine(const std::function<void(Assembler&)>& emit) {
  Machine m{hw::MachineConfig{}};
  Assembler a(0x1000);
  emit(a);
  a.finalize().load(m.mem());
  m.cpu().state().pc = 0x1000;
  return m;
}

TEST(Machine, RunForAdvancesApproximatelyBudget) {
  auto m = make_machine([](Assembler& a) {
    a.label("spin");
    a.jmp(l("spin"));
  });
  const auto r = m.run_for(100000);
  EXPECT_EQ(r, Machine::StopReason::kBudget);
  EXPECT_GE(m.now(), 100000u);
  EXPECT_LT(m.now(), 101000u);  // overshoot bounded by one instruction
}

TEST(Machine, HaltedCpuSkipsToEventsAndIdleIsAccounted) {
  auto m = make_machine([](Assembler& a) { a.hlt(); });
  // Schedule a no-op event far in the future so time can be skipped.
  bool fired = false;
  m.events().schedule_at(500000, [&](Cycles) { fired = true; });
  const auto probe = m.begin_load_probe();
  // After the event at 500000 fires there is nothing left that could ever
  // wake the machine: the run ends early with kIdleDeadlock.
  EXPECT_EQ(m.run_for(1000000), Machine::StopReason::kIdleDeadlock);
  EXPECT_TRUE(fired);
  EXPECT_GT(m.idle_cycles(), 490000u);
  EXPECT_LT(m.cpu_load(probe), 0.01);
}

TEST(Machine, IdleDeadlockDetected) {
  auto m = make_machine([](Assembler& a) { a.hlt(); });
  // Halted with IF=0 and no events: nothing can ever happen.
  EXPECT_EQ(m.run_for(1000000), Machine::StopReason::kIdleDeadlock);
}

TEST(Machine, GuestExitStopsTheRun) {
  auto m = make_machine([](Assembler& a) {
    a.movi(kR0, u32{0x77});
    a.out(hw::kDiagExitPort, kR0);
    a.label("spin");
    a.jmp(l("spin"));
  });
  EXPECT_EQ(m.run_for(1000000), Machine::StopReason::kGuestExit);
  EXPECT_EQ(m.guest_exit_code().value_or(0), 0x77u);
  m.clear_guest_exit();
  EXPECT_EQ(m.run_for(10000), Machine::StopReason::kBudget);
}

TEST(Machine, ShutdownReported) {
  auto m = make_machine([](Assembler& a) {
    a.movi(kR0, u32{0});
    a.movi(kR1, u32{1});
    a.divu(kR1, kR1, kR0);  // #DE, no IDT -> triple fault
  });
  EXPECT_EQ(m.run_for(1000000), Machine::StopReason::kShutdown);
}

TEST(Machine, ExternalStopBreaksOut) {
  auto m = make_machine([](Assembler& a) {
    a.label("spin");
    a.jmp(l("spin"));
  });
  m.events().schedule_at(5000, [&](Cycles) { m.external_stop(); });
  EXPECT_EQ(m.run_for(1000000), Machine::StopReason::kExternalStop);
  EXPECT_LT(m.now(), 10000u);
}

TEST(Machine, MidSlicePreemptionDeliversPromptEvents) {
  // The guest polls the diag host-value; an event scheduled DURING the
  // CPU's slice (here: right after run_for starts, by another event) must
  // be observed without waiting for the slice end.
  auto m = make_machine([](Assembler& a) {
    a.label("poll");
    a.in(kR0, hw::kDiagValuePort);
    a.cmpi(kR0, u32{42});
    a.jnz(l("poll"));
    a.movi(kR0, u32{1});
    a.out(hw::kDiagExitPort, kR0);
  });
  // First event (at 1000) schedules a second (at 2000) which flips the
  // value; with a 10ms slice, lack of preemption would stall the poll loop.
  m.events().schedule_at(1000, [&](Cycles now) {
    m.events().schedule_at(now + 1000,
                           [&](Cycles) { m.diag().set_host_value(42); });
  });
  EXPECT_EQ(m.run_for(seconds_to_cycles(0.01)),
            Machine::StopReason::kGuestExit);
  EXPECT_LT(m.now(), 20000u);  // far below the 12.6M-cycle slice
}

TEST(Machine, FrozenCpuStillRunsEventsAndService) {
  auto m = make_machine([](Assembler& a) {
    a.label("spin");
    a.jmp(l("spin"));
  });
  int fired = 0, serviced = 0;
  m.events().schedule_at(1000, [&](Cycles) { ++fired; });
  m.events().schedule_at(50000, [&](Cycles) { ++fired; });
  m.set_frozen_service([&] { ++serviced; });
  m.set_cpu_frozen(true);
  const u64 instr_before = m.cpu().stats().instructions;
  m.run_for(100000);
  EXPECT_EQ(fired, 2);
  EXPECT_GT(serviced, 0);
  EXPECT_EQ(m.cpu().stats().instructions, instr_before);  // CPU untouched
  EXPECT_GT(m.idle_cycles(), 0u);
  m.set_cpu_frozen(false);
  m.run_for(1000);
  EXPECT_GT(m.cpu().stats().instructions, instr_before);
}

TEST(Machine, LoadProbeMeasuresBusyFraction) {
  // Half busy spin, half halted (woken by an event that never comes ->
  // compare two probes instead).
  auto m = make_machine([](Assembler& a) {
    a.label("spin");
    a.jmp(l("spin"));
  });
  const auto probe = m.begin_load_probe();
  m.run_for(100000);
  EXPECT_NEAR(m.cpu_load(probe), 1.0, 0.01);
}

TEST(Machine, RunUntilStoppedLoops) {
  auto m = make_machine([](Assembler& a) {
    a.label("spin");
    a.jmp(l("spin"));
  });
  EXPECT_EQ(m.run_until_stopped(3'000'000), Machine::StopReason::kBudget);
  EXPECT_GE(m.now(), 3'000'000u);
}

}  // namespace
}  // namespace vdbg::test

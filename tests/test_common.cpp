// Unit tests for the common substrate: event queue, ring buffer, statistics,
// Internet checksum, hex utilities, RNG determinism and unit conversions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/checksum.h"
#include "common/event_queue.h"
#include "common/hexdump.h"
#include "common/ring_buffer.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"

namespace vdbg::test {
namespace {

// ---------------------------------------------------------------- events --
TEST(EventQueue, FiresInDeadlineOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule_at(30, [&](Cycles) { fired.push_back(3); });
  q.schedule_at(10, [&](Cycles) { fired.push_back(1); });
  q.schedule_at(20, [&](Cycles) { fired.push_back(2); });
  EXPECT_EQ(q.run_until(25), 2);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.run_until(30), 1);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SameDeadlineFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(10, [&, i](Cycles) { fired.push_back(i); });
  }
  q.run_until(10);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule_at(10, [&](Cycles) { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double cancel
  EXPECT_EQ(q.run_until(100), 0);
  EXPECT_FALSE(fired);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NamesStoredOnlyUnderTracing) {
  EventQueue q;
  // Tracing off (default): names are dropped at the scheduling boundary.
  q.schedule_at(10, [](Cycles) {}, "dropped-label");
  auto names = q.pending_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "?");

  q.set_name_tracing(true);
  q.schedule_at(5, [](Cycles) {}, "uart-rx");
  const EventId cancelled = q.schedule_at(7, [](Cycles) {}, "gone");
  q.cancel(cancelled);
  names = q.pending_names();
  ASSERT_EQ(names.size(), 2u);  // cancelled entry excluded
  EXPECT_EQ(names[0], "uart-rx");
  EXPECT_EQ(names[1], "?");  // the pre-tracing entry stays unnamed

  q.run_until(100);
  EXPECT_TRUE(q.pending_names().empty());
}

TEST(EventQueue, NextDeadlineSkipsCancelled) {
  EventQueue q;
  const EventId a = q.schedule_at(5, [](Cycles) {});
  q.schedule_at(9, [](Cycles) {});
  EXPECT_EQ(q.next_deadline().value(), 5u);
  q.cancel(a);
  EXPECT_EQ(q.next_deadline().value(), 9u);
}

TEST(EventQueue, CallbackMayRescheduleItself) {
  EventQueue q;
  int count = 0;
  std::function<void(Cycles)> tick = [&](Cycles now) {
    if (++count < 5) q.schedule_at(now + 10, tick);
  };
  q.schedule_at(10, tick);
  q.run_until(100);
  EXPECT_EQ(count, 5);
}

TEST(EventQueue, CallbackSchedulingWithinWindowFiresSamePass) {
  EventQueue q;
  bool inner = false;
  q.schedule_at(10, [&](Cycles now) {
    q.schedule_at(now + 1, [&](Cycles) { inner = true; });
  });
  q.run_until(20);
  EXPECT_TRUE(inner);
}

TEST(EventQueue, CancelledCallbackDestroyed) {
  EventQueue q;
  auto shared = std::make_shared<int>(42);
  std::weak_ptr<int> weak = shared;
  const EventId id = q.schedule_at(10, [keep = shared](Cycles) {});
  shared.reset();
  EXPECT_FALSE(weak.expired());  // held by the queue
  q.cancel(id);
  q.run_until(100);  // tombstone processed here
  EXPECT_TRUE(weak.expired());
}

TEST(EventQueue, DeadlineObserverSeesEverySchedule) {
  EventQueue q;
  std::vector<Cycles> seen;
  q.set_deadline_observer([&](Cycles d) { seen.push_back(d); });
  q.schedule_at(50, [](Cycles) {});
  q.schedule_at(10, [](Cycles) {});
  // Rescheduling from inside a callback is observed too.
  q.schedule_at(20, [&](Cycles now) {
    q.schedule_at(now + 5, [](Cycles) {});
  });
  q.run_until(30);
  EXPECT_EQ(seen, (std::vector<Cycles>{50, 10, 20, 25}));
}

// ------------------------------------------------------------------ ring --
TEST(RingBuffer, FifoOrderAndCapacity) {
  RingBuffer<int, 4> rb;
  EXPECT_TRUE(rb.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(rb.push(i));
  EXPECT_TRUE(rb.full());
  EXPECT_FALSE(rb.push(99));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rb.pop().value(), i);
  EXPECT_FALSE(rb.pop().has_value());
}

TEST(RingBuffer, WrapsCorrectly) {
  RingBuffer<int, 3> rb;
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(rb.push(round));
    EXPECT_EQ(rb.pop().value(), round);
  }
}

TEST(RingBuffer, PeekDoesNotConsume) {
  RingBuffer<int, 2> rb;
  rb.push(7);
  EXPECT_EQ(rb.peek().value(), 7);
  EXPECT_EQ(rb.size(), 1u);
  EXPECT_EQ(rb.pop().value(), 7);
}

// ----------------------------------------------------------------- stats --
TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Histogram, PercentilesInterpolate) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(double(i));
  EXPECT_NEAR(h.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(h.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(h.percentile(50), 50.5, 1e-9);
  // Adding after a query re-sorts.
  h.add(1000.0);
  EXPECT_NEAR(h.percentile(100), 1000.0, 1e-9);
}

TEST(Histogram, ReservoirBoundsStorage) {
  Histogram h(64);
  for (int i = 0; i < 100'000; ++i) h.add(double(i % 1000));
  EXPECT_EQ(h.count(), 100'000u);   // every add is counted...
  EXPECT_EQ(h.stored(), 64u);       // ...but storage stays bounded
  // The reservoir is a uniform sample of a uniform stream: extreme
  // percentiles stay within the stream's range and the median lands in
  // a generous middle band.
  EXPECT_GE(h.percentile(0), 0.0);
  EXPECT_LE(h.percentile(100), 999.0);
  EXPECT_GT(h.percentile(50), 200.0);
  EXPECT_LT(h.percentile(50), 800.0);
}

TEST(Histogram, ReservoirIsDeterministic) {
  // Same stream -> same reservoir (the RNG is seeded, not ambient), so
  // replayed runs reproduce percentile summaries bit for bit.
  Histogram a(32), b(32);
  for (int i = 0; i < 10'000; ++i) {
    a.add(double(i * 7 % 977));
    b.add(double(i * 7 % 977));
  }
  for (double p : {1.0, 25.0, 50.0, 75.0, 99.0}) {
    EXPECT_EQ(a.percentile(p), b.percentile(p)) << "p" << p;
  }
}

TEST(Histogram, BelowCapacityKeepsEverySample) {
  Histogram h(1000);
  for (int i = 1; i <= 100; ++i) h.add(double(i));
  EXPECT_EQ(h.stored(), 100u);
  // With no eviction the percentiles are exact, as before the reservoir.
  EXPECT_NEAR(h.percentile(50), 50.5, 1e-9);
}

// -------------------------------------------------------------- checksum --
TEST(Checksum, Rfc1071KnownVector) {
  // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  const u8 data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, VerifiesToZeroWithChecksumIncluded) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<u8> data(2 * rng.between(4, 64));
    for (auto& b : data) b = static_cast<u8>(rng.next_u32());
    const u16 c = internet_checksum(data);
    // Append the checksum and verify the ones'-complement property.
    data.push_back(static_cast<u8>(c >> 8));
    data.push_back(static_cast<u8>(c));
    EXPECT_EQ(internet_checksum(data), 0u) << "trial " << trial;
  }
}

TEST(Checksum, OddLengthPadsWithZero) {
  const u8 odd[] = {0xab};
  const u8 even[] = {0xab, 0x00};
  EXPECT_EQ(internet_checksum(odd), internet_checksum(even));
}

TEST(Checksum, IncrementalMatchesOneShot) {
  Rng rng(9);
  std::vector<u8> data(128);
  for (auto& b : data) b = static_cast<u8>(rng.next_u32());
  InternetChecksum inc;
  inc.add(std::span<const u8>(data).subspan(0, 50));
  inc.add(std::span<const u8>(data).subspan(50));
  EXPECT_EQ(inc.fold(), internet_checksum(data));
}

// ------------------------------------------------------------------- hex --
TEST(Hex, RoundTripRandom) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<u8> data(rng.between(0, 64));
    for (auto& b : data) b = static_cast<u8>(rng.next_u32());
    const auto s = to_hex(data);
    const auto back = from_hex(s);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);
  }
}

TEST(Hex, RejectsMalformed) {
  EXPECT_FALSE(from_hex("abc").has_value());   // odd length
  EXPECT_FALSE(from_hex("zz").has_value());    // non-hex
  EXPECT_TRUE(from_hex("").has_value());       // empty ok
}

TEST(Hex, DumpFormatsOffsetsAndAscii) {
  std::vector<u8> data;
  for (int i = 0; i < 20; ++i) data.push_back(static_cast<u8>('A' + i));
  const std::string dump = hexdump(data, 0x1000);
  EXPECT_NE(dump.find("00001000"), std::string::npos);
  EXPECT_NE(dump.find("ABCDEFGH"), std::string::npos);
  EXPECT_NE(dump.find("00001010"), std::string::npos);  // second line
}

// ------------------------------------------------------------------- rng --
TEST(Rng, DeterministicPerSeed) {
  Rng a(1234), b(1234), c(999);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const u64 va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BoundsRespected) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
    const u64 v = r.between(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ----------------------------------------------------------------- units --
TEST(Units, CycleTimeRoundTrip) {
  EXPECT_EQ(seconds_to_cycles(1.0), Cycles{1260000000});
  EXPECT_DOUBLE_EQ(cycles_to_seconds(1260000000), 1.0);
  // 1 Gbps for 1 second = 125 MB moved.
  EXPECT_NEAR(bytes_per_cycles_to_mbps(125'000'000, seconds_to_cycles(1.0)),
              1000.0, 1e-6);
  EXPECT_EQ(transfer_cycles(126, 126e6), Cycles{1260});
}

}  // namespace
}  // namespace vdbg::test

// Copy-on-write physical memory tests: frame sharing between a machine and
// its captures, write isolation across forked siblings, delta-capture
// accounting (fresh pages = dirtied since the previous capture), and the
// TimeTravel property the multiverse rests on — a delta checkpoint restores
// to state byte-identical with a full self-contained snapshot.
#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/units.h"
#include "cpu/phys_mem.h"
#include "guest/minitactix.h"
#include "harness/platform.h"
#include "vmm/time_travel.h"

namespace vdbg::test {
namespace {

using cpu::CowPages;
using cpu::kPageSize;
using cpu::PhysMem;
using guest::RunConfig;
using harness::Platform;
using harness::PlatformKind;
using vmm::TimeTravel;
using MStop = hw::Machine::StopReason;

constexpr u32 kMemBytes = 1024 * 1024;

// --------------------------------------------------------- frame sharing --

TEST(CowPhysMem, CaptureIsSparseAndZeroPagesStayFree) {
  PhysMem m(kMemBytes);
  EXPECT_EQ(m.nonzero_pages(), 0u);

  const CowPages empty = m.capture_cow();
  EXPECT_EQ(empty.resident_pages(), 0u);
  EXPECT_EQ(empty.fresh_pages(), 0u);
  EXPECT_EQ(empty.retained_bytes(), 0u);

  m.write32(5 * kPageSize + 16, 0x11223344);
  m.write32(9 * kPageSize, 0x55667788);
  const CowPages two = m.capture_cow();
  EXPECT_EQ(two.resident_pages(), 2u);
  EXPECT_EQ(two.fresh_pages(), 2u);
  EXPECT_GE(two.retained_bytes(), 2u * kPageSize);

  u64 zero = 0, shared = 0, owned = 0;
  m.cow_census(&zero, &shared, &owned);
  EXPECT_EQ(shared, 2u);  // both resident frames now shared with the capture
  EXPECT_EQ(owned, 0u);
  EXPECT_EQ(zero, (kMemBytes / kPageSize) - 2);
}

TEST(CowPhysMem, ForkedSiblingsWriteTheSamePageWithoutInterference) {
  PhysMem parent(kMemBytes);
  const u32 addr = 7 * kPageSize + 128;
  parent.write32(addr, 0xa11ce);
  const CowPages snap = parent.capture_cow();

  PhysMem sibling(kMemBytes);
  ASSERT_TRUE(sibling.adopt_cow(snap));
  EXPECT_EQ(sibling.read32(addr), 0xa11ceu);

  // Both timelines dirty the SAME page; each must fault onto a private
  // frame and neither may see the other's write.
  parent.write32(addr, 0xfacade);
  sibling.write32(addr, 0xdecade);
  EXPECT_EQ(parent.read32(addr), 0xfacadeu);
  EXPECT_EQ(sibling.read32(addr), 0xdecadeu);
  EXPECT_GE(parent.cow_faults() + sibling.cow_faults(), 2u);

  // A third adopter of the original capture still reads the original
  // contents: the shared frame itself was never written through.
  PhysMem witness(kMemBytes);
  ASSERT_TRUE(witness.adopt_cow(snap));
  EXPECT_EQ(witness.read32(addr), 0xa11ceu);
}

TEST(CowPhysMem, AdoptRollsBackContentsAndVersionsTogether) {
  PhysMem m(kMemBytes);
  const u32 page = 3;
  const u32 addr = page * kPageSize;
  m.write32(addr, 1);
  m.write32(addr, 2);
  const u64 v_at_capture = m.page_version(page);
  const CowPages snap = m.capture_cow();

  m.write32(addr, 3);
  EXPECT_GT(m.page_version(page), v_at_capture);

  ASSERT_TRUE(m.adopt_cow(snap));
  EXPECT_EQ(m.read32(addr), 2u);
  EXPECT_EQ(m.page_version(page), v_at_capture)
      << "versions must roll back with the contents so a replayed run "
         "re-increments them identically";
}

TEST(CowPhysMem, SelfAdoptionIsSafe) {
  PhysMem m(kMemBytes);
  m.write32(0x4000, 0xbeef);
  const CowPages snap = m.capture_cow();
  ASSERT_TRUE(m.adopt_cow(snap));
  EXPECT_EQ(m.read32(0x4000), 0xbeefu);

  // Size mismatch is refused and leaves the target untouched.
  PhysMem other(kMemBytes * 2);
  other.write32(0x4000, 7);
  EXPECT_FALSE(other.adopt_cow(snap));
  EXPECT_EQ(other.read32(0x4000), 7u);
}

TEST(CowPhysMem, FreshPagesCountOnlyPagesDirtiedSinceTheLastCapture) {
  PhysMem m(kMemBytes);
  for (u32 p = 0; p < 8; ++p) m.write32(p * kPageSize, p + 1);
  const CowPages base = m.capture_cow();
  EXPECT_EQ(base.fresh_pages(), 8u);

  // Dirty exactly one page: the next capture retains one new frame and
  // shares the other seven with `base`.
  m.write32(2 * kPageSize, 0x99);
  const CowPages delta = m.capture_cow();
  EXPECT_EQ(delta.resident_pages(), 8u);
  EXPECT_EQ(delta.fresh_pages(), 1u);
  EXPECT_LT(delta.retained_bytes(), base.retained_bytes());
  EXPECT_GE(delta.retained_bytes(), u64{kPageSize});
}

TEST(CowPhysMem, MetricsRegisterUnderMemCow) {
  PhysMem m(kMemBytes);
  MetricsRegistry reg;
  m.register_metrics(reg);
  bool saw_faults = false;
  for (const auto& s : reg.snapshot()) {
    if (s.name == "mem.cow.faults") {
      saw_faults = true;
      EXPECT_FALSE(s.replay_exact) << "COW activity is host-side";
    }
    EXPECT_EQ(s.name.rfind("mem.cow.", 0), 0u);
  }
  EXPECT_TRUE(saw_faults);
}

// ------------------------------------------------- delta checkpoint ring --

std::unique_ptr<Platform> make_lvmm() {
  auto p = std::make_unique<Platform>(PlatformKind::kLvmm);
  p->prepare(RunConfig::for_rate_mbps(40.0));
  return p;
}

// The headline property: restoring a delta (COW) checkpoint lands on state
// byte-identical to a full self-contained snapshot taken at the same
// boundary.
TEST(CowCheckpoint, DeltaRestoreIsByteIdenticalToFullSnapshot) {
  auto p = make_lvmm();
  auto& m = p->machine();
  TimeTravel::Config cfg;
  cfg.cow_delta = true;
  TimeTravel tt(*p->monitor(), cfg);

  ASSERT_EQ(m.run_for(seconds_to_cycles(0.01)), MStop::kBudget);
  ASSERT_TRUE(tt.checkpoint_now());
  const auto full = tt.save_state();  // always a full stream
  ASSERT_FALSE(full.empty());

  // The delta stream itself must be much smaller than the full one (it
  // externalises memory), while restoring to identical state.
  const auto& cp = tt.checkpoints().back();
  EXPECT_GT(cp.mem.resident_pages(), 0u);
  EXPECT_LT(cp.bytes.size(), full.size() / 4);

  // Run past the boundary, then restore through the fork path the
  // multiverse uses (adopt the COW table, then replay the external-memory
  // stream over it).
  ASSERT_EQ(m.run_for(seconds_to_cycles(0.005)), MStop::kBudget);
  ASSERT_TRUE(TimeTravel::restore_checkpoint_into(m, p->monitor(), cp));
  EXPECT_EQ(tt.save_state(), full)
      << "delta checkpoint restored to different state than a full snapshot";
}

// Consecutive delta checkpoints only pay for pages dirtied in between.
TEST(CowCheckpoint, ConsecutiveCheckpointsStoreOnlyTheDelta) {
  auto p = make_lvmm();
  auto& m = p->machine();
  TimeTravel::Config cfg;
  cfg.cow_delta = true;
  TimeTravel tt(*p->monitor(), cfg);

  ASSERT_EQ(m.run_for(seconds_to_cycles(0.02)), MStop::kBudget);
  ASSERT_TRUE(tt.checkpoint_now());
  const auto& first = tt.checkpoints().back();
  const u64 first_cost = first.stored_bytes;
  ASSERT_GT(first.mem.fresh_pages(), 0u);

  // A short run dirties far fewer pages than the whole boot did.
  ASSERT_EQ(m.run_for(seconds_to_cycles(0.001)), MStop::kBudget);
  ASSERT_TRUE(tt.checkpoint_now());
  const auto& second = tt.checkpoints().back();
  EXPECT_LT(second.mem.fresh_pages(), first.mem.fresh_pages());
  EXPECT_LT(second.stored_bytes, first_cost / 2)
      << "second delta checkpoint should cost a fraction of the first";
  EXPECT_GE(second.mem.resident_pages(), first.mem.resident_pages());
  EXPECT_GE(tt.stats().cow_fresh_pages,
            first.mem.fresh_pages() + second.mem.fresh_pages());
}

// Full (non-delta) mode still produces self-contained checkpoints and the
// two modes restore to the same machine state.
TEST(CowCheckpoint, FullModeCheckpointsRemainSelfContained) {
  auto p = make_lvmm();
  auto& m = p->machine();
  TimeTravel::Config cfg;
  cfg.cow_delta = false;
  TimeTravel tt(*p->monitor(), cfg);

  ASSERT_EQ(m.run_for(seconds_to_cycles(0.01)), MStop::kBudget);
  ASSERT_TRUE(tt.checkpoint_now());
  const auto& cp = tt.checkpoints().back();
  EXPECT_TRUE(cp.mem.empty());
  EXPECT_EQ(cp.stored_bytes, cp.bytes.size());

  const auto here = tt.save_state();
  ASSERT_EQ(m.run_for(seconds_to_cycles(0.002)), MStop::kBudget);
  ASSERT_TRUE(TimeTravel::restore_checkpoint_into(m, p->monitor(), cp));
  EXPECT_EQ(tt.save_state(), here);
}

}  // namespace
}  // namespace vdbg::test

// RSP wire-protocol tests for the monitor's debug stub: framing, checksum
// rejection, command edge cases and custom queries — driven byte-by-byte
// through the UART like a real (possibly buggy) debugger would.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "guest/minitactix.h"
#include "harness/platform.h"
#include "vmm/stub.h"

namespace vdbg::test {
namespace {

using harness::Platform;
using harness::PlatformKind;

struct WireRig {
  WireRig() {
    platform = std::make_unique<Platform>(PlatformKind::kLvmm);
    platform->prepare(guest::RunConfig());
    stub = std::make_unique<vmm::DebugStub>(*platform->monitor(),
                                            platform->machine().uart());
    stub->attach();
    platform->machine().uart().set_tx_sink(
        [this](u8 b) { wire_out.push_back(static_cast<char>(b)); });
  }

  /// Injects raw bytes and runs the machine long enough to process them.
  void send_raw(std::string_view bytes) {
    for (char c : bytes) {
      platform->machine().uart().host_inject(static_cast<u8>(c));
    }
    platform->machine().run_for(seconds_to_cycles(0.01));
  }

  /// Frames and sends a payload with a correct checksum.
  void send_packet(const std::string& payload) {
    unsigned sum = 0;
    for (char c : payload) sum += static_cast<u8>(c);
    char trailer[4];
    std::snprintf(trailer, sizeof trailer, "#%02x",
                  static_cast<unsigned>(sum & 0xff));
    send_raw("$" + payload + trailer);
  }

  /// Extracts the payload of the most recent well-formed reply packet.
  std::string last_reply() const {
    const auto dollar = wire_out.rfind('$');
    if (dollar == std::string::npos) return {};
    const auto hash = wire_out.find('#', dollar);
    if (hash == std::string::npos) return {};
    return wire_out.substr(dollar + 1, hash - dollar - 1);
  }

  std::unique_ptr<Platform> platform;
  std::unique_ptr<vmm::DebugStub> stub;
  std::string wire_out;
};

TEST(StubProtocol, AcksValidPacketsAndAnswers) {
  WireRig rig;
  rig.send_packet("qSupported");
  EXPECT_NE(rig.wire_out.find('+'), std::string::npos);
  EXPECT_EQ(rig.last_reply(), "PacketSize=1000");
}

TEST(StubProtocol, RejectsBadChecksumWithNak) {
  WireRig rig;
  rig.send_raw("$qSupported#00");  // wrong checksum
  EXPECT_NE(rig.wire_out.find('-'), std::string::npos);
  EXPECT_EQ(rig.last_reply(), "");  // no reply packet
}

TEST(StubProtocol, IgnoresGarbageBetweenPackets) {
  WireRig rig;
  rig.send_raw("zzz+++random");
  rig.send_packet("qAttached");
  EXPECT_EQ(rig.last_reply(), "1");
}

TEST(StubProtocol, UnknownCommandsGetEmptyReply) {
  WireRig rig;
  rig.send_packet("vMustReplyEmpty");
  EXPECT_EQ(rig.last_reply(), "");
  EXPECT_NE(rig.wire_out.find("$#00"), std::string::npos);
}

TEST(StubProtocol, RegisterReadWidthAndErrors) {
  WireRig rig;
  rig.send_packet("g");
  EXPECT_EQ(rig.last_reply().size(), 10u * 8u);  // r0-r7, pc, psw
  rig.send_packet("p20");  // register 0x20: out of range
  EXPECT_EQ(rig.last_reply(), "E01");
  rig.send_packet("P1=zzzzzzzz");  // bad hex
  EXPECT_EQ(rig.last_reply(), "E01");
}

TEST(StubProtocol, MemoryCommandEdgeCases) {
  WireRig rig;
  rig.send_packet("m1000");  // missing length
  EXPECT_EQ(rig.last_reply(), "E01");
  rig.send_packet("m1000,2000");  // oversize (>0x1000)
  EXPECT_EQ(rig.last_reply(), "E01");
  rig.send_packet("mfff00000,4");  // outside guest RAM
  EXPECT_EQ(rig.last_reply(), "E03");
  rig.send_packet("M1000,4:0102");  // length/data mismatch
  EXPECT_EQ(rig.last_reply(), "E01");
  rig.send_packet("M700000,4:0a0b0c0d");
  EXPECT_EQ(rig.last_reply(), "OK");
  rig.send_packet("m700000,4");
  EXPECT_EQ(rig.last_reply(), "0a0b0c0d");
}

TEST(StubProtocol, BreakpointValidation) {
  WireRig rig;
  rig.send_packet("Z0,10004,8");  // misaligned (not on an 8-byte boundary)
  EXPECT_EQ(rig.last_reply(), "E02");
  rig.send_packet("Z1,10000,8");  // hardware watchpoints unsupported
  EXPECT_EQ(rig.last_reply(), "");
  rig.send_packet("Z0,10000,8");
  EXPECT_EQ(rig.last_reply(), "OK");
  EXPECT_EQ(rig.stub->breakpoint_count(), 1u);
  rig.send_packet("Z0,10000,8");  // idempotent insert
  EXPECT_EQ(rig.last_reply(), "OK");
  EXPECT_EQ(rig.stub->breakpoint_count(), 1u);
  rig.send_packet("z0,10000,8");
  EXPECT_EQ(rig.last_reply(), "OK");
  EXPECT_EQ(rig.stub->breakpoint_count(), 0u);
  rig.send_packet("z0,10000,8");  // removing absent breakpoint is OK
  EXPECT_EQ(rig.last_reply(), "OK");
}

TEST(StubProtocol, CustomQueriesReportMonitorState) {
  WireRig rig;
  rig.send_packet("qVdbg.Crashed");
  EXPECT_EQ(rig.last_reply(), "0");
  rig.send_packet("qVdbg.MonitorIntact");
  EXPECT_EQ(rig.last_reply(), "1");
  rig.send_packet("qVdbg.Exits");
  EXPECT_FALSE(rig.last_reply().empty());
}

TEST(StubProtocol, TierQueryTracksKillSwitches) {
  WireRig rig;
  auto& cpu = rig.platform->machine().cpu();
  rig.send_packet("qVdbg.Tier");
  EXPECT_EQ(rig.last_reply(), "superblock");  // the default configuration
  cpu.set_superblocks_enabled(false);
  rig.send_packet("qVdbg.Tier");
  EXPECT_EQ(rig.last_reply(), "block-cache");
  cpu.set_block_cache_enabled(false);
  rig.send_packet("qVdbg.Tier");
  EXPECT_EQ(rig.last_reply(), "interp");
}

TEST(StubProtocol, ExitStatsQueryFormatsPerKindTriples) {
  WireRig rig;
  rig.platform->machine().run_for(seconds_to_cycles(0.02));
  rig.send_packet("qVdbg.ExitStats");
  const std::string reply = rig.last_reply();
  ASSERT_FALSE(reply.empty());

  // Exactly one "name:count:cycles" triple per exit kind, ';'-separated,
  // in enum order.
  std::vector<std::string> triples;
  std::size_t start = 0;
  while (start <= reply.size()) {
    const auto semi = reply.find(';', start);
    triples.push_back(reply.substr(
        start, semi == std::string::npos ? std::string::npos : semi - start));
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  ASSERT_EQ(triples.size(), vmm::kNumExitKinds);
  u64 total = 0;
  for (unsigned k = 0; k < vmm::kNumExitKinds; ++k) {
    const std::string& t = triples[k];
    const auto c1 = t.find(':');
    const auto c2 = t.find(':', c1 + 1);
    ASSERT_NE(c1, std::string::npos) << t;
    ASSERT_NE(c2, std::string::npos) << t;
    EXPECT_EQ(t.substr(0, c1),
              vmm::exit_kind_name(static_cast<vmm::ExitKind>(k)));
    total += std::stoull(t.substr(c1 + 1, c2 - c1 - 1));
  }
  // The guest booted and ran: some exits must have been recorded. The
  // reply is a snapshot — the guest keeps exiting while the answer drains
  // over the UART — so it can only lag the live counter.
  EXPECT_GT(total, 0u);
  EXPECT_LE(total, rig.platform->monitor()->exit_stats().total);
}

TEST(StubProtocol, BreakInFreezesAndStatusQueryReflectsIt) {
  WireRig rig;
  rig.send_packet("?");
  EXPECT_EQ(rig.last_reply(), "OK");  // running
  rig.send_raw(std::string(1, '\x03'));
  EXPECT_TRUE(rig.stub->target_stopped());
  EXPECT_TRUE(rig.platform->machine().cpu_frozen());
  EXPECT_EQ(rig.last_reply(), "S05");
  rig.send_packet("?");
  EXPECT_EQ(rig.last_reply(), "S05");
  rig.send_packet("c");
  rig.platform->machine().run_for(seconds_to_cycles(0.005));
  EXPECT_FALSE(rig.platform->machine().cpu_frozen());
}

TEST(StubProtocol, SurvivesFuzzedWireGarbage) {
  // A hostile/broken debugger must not take the monitor down: feed random
  // bytes (interleaved with occasional valid packets) and verify the stub
  // still answers and the guest still streams.
  WireRig rig;
  Rng rng(0xfeedface);
  std::string junk;
  for (int i = 0; i < 2048; ++i) {
    junk.push_back(static_cast<char>(rng.next_u32()));
  }
  rig.send_raw(junk);
  rig.send_packet("qSupported");
  EXPECT_EQ(rig.last_reply(), "PacketSize=1000");
  for (int round = 0; round < 8; ++round) {
    std::string mix;
    for (int i = 0; i < 200; ++i) {
      mix.push_back(static_cast<char>(rng.next_u32()));
    }
    rig.send_raw(mix);
  }
  rig.send_packet("qVdbg.MonitorIntact");
  EXPECT_EQ(rig.last_reply(), "1");
  EXPECT_FALSE(rig.platform->monitor()->vcpu().crashed);
  EXPECT_FALSE(rig.platform->machine().cpu().shutdown());
  // Fuzz may include 0x03 break-ins: resume if frozen, then confirm life.
  rig.send_packet("c");
  rig.platform->machine().run_for(seconds_to_cycles(0.02));
  EXPECT_GT(rig.platform->mailbox().ticks, 0u);
}

TEST(StubProtocol, CommandsAreChargedMonitorCycles) {
  WireRig rig;
  const auto before = rig.platform->monitor()->exit_stats().charged_cycles;
  rig.send_packet("g");
  EXPECT_GT(rig.platform->monitor()->exit_stats().charged_cycles, before);
  EXPECT_GE(rig.stub->commands_executed(), 1u);
}

}  // namespace
}  // namespace vdbg::test

// End-to-end tests of MiniTactix under the lightweight VMM: identical guest
// behaviour, device passthrough, shadow paging, interrupt virtualisation,
// and — the paper's stability claim — monitor survival across guest faults.
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "common/units.h"
#include "guest/layout.h"
#include "harness/platform.h"
#include "hw/scsi_disk.h"

namespace vdbg::test {
namespace {

using guest::Mailbox;
using guest::RunConfig;
using harness::Platform;
using harness::PlatformKind;
using hw::Machine;

TEST(LvmmBoot, ReachesMagicAndTicksLikeNative) {
  Platform p(PlatformKind::kLvmm);
  p.prepare(RunConfig());
  p.machine().run_for(seconds_to_cycles(0.05));
  const auto mb = p.mailbox();
  EXPECT_EQ(mb.magic, Mailbox::kMagicValue);
  EXPECT_NEAR(double(mb.ticks), 50.0, 5.0);  // virtualised timer still 1 kHz
  EXPECT_EQ(mb.last_error, 0u);
  EXPECT_FALSE(p.monitor()->vcpu().crashed);
  EXPECT_TRUE(p.monitor()->monitor_memory_intact());

  const auto& ex = p.monitor()->exit_stats();
  EXPECT_GT(ex.total, 0u);
  EXPECT_GT(ex.privileged_instr, 0u);  // CLI/STI/HLT/IRET/LIDT/CR traps
  EXPECT_GT(ex.io_emulated, 0u);       // PIC/PIT accesses
  EXPECT_GT(ex.injections, 0u);        // timer interrupts injected
  EXPECT_GT(ex.shadow_syncs, 0u);      // hidden page faults
  EXPECT_GT(ex.soft_ints, 0u);         // app syscalls
}

TEST(LvmmTransfer, FullPipelineIntegrityUnderTheMonitor) {
  RunConfig rc = RunConfig::for_rate_mbps(60.0);
  rc.stop_after_segments = 48;
  Platform p(PlatformKind::kLvmm);
  p.prepare(rc);
  p.sink().set_payload_validator(guest::make_stream_validator(rc));

  const auto stop = p.machine().run_until_stopped(seconds_to_cycles(2.0));
  EXPECT_EQ(stop, Machine::StopReason::kGuestExit);
  EXPECT_EQ(p.machine().guest_exit_code().value_or(0), guest::kExitDone);
  p.machine().clear_guest_exit();
  p.machine().run_for(seconds_to_cycles(0.002));

  EXPECT_GE(p.sink().frames(), 48u);
  EXPECT_EQ(p.sink().parse_errors(), 0u);
  EXPECT_EQ(p.sink().checksum_errors(), 0u);
  EXPECT_EQ(p.sink().sequence_gaps(), 0u);
  EXPECT_EQ(p.sink().content_errors(), 0u);
  EXPECT_EQ(p.mailbox().last_error, 0u);
  EXPECT_TRUE(p.monitor()->monitor_memory_intact());
}

TEST(LvmmTransfer, HighThroughputDevicesAreDirectAccess) {
  RunConfig rc = RunConfig::for_rate_mbps(60.0);
  rc.stop_after_segments = 32;
  Platform p(PlatformKind::kLvmm);
  p.prepare(rc);
  p.machine().run_until_stopped(seconds_to_cycles(2.0));

  // The guest performed NIC doorbells, NIC ISR reads/acks and SCSI accesses;
  // none of them may appear as emulated-I/O exits. Only PIC/PIT/UART do.
  const auto& ex = p.monitor()->exit_stats();
  EXPECT_EQ(ex.unknown_ports, 0u);
  // Emulated I/O =~ PIC programming (10 writes) + EOIs; each EOI pairs with
  // an injection. NIC doorbells alone (32+) would dwarf this if trapped.
  EXPECT_GT(p.machine().cpu().stats().io_accesses, ex.io_emulated);
}

TEST(LvmmProtect, UserWildWriteToMonitorAddressReflectsToGuest) {
  Platform p(PlatformKind::kLvmm);
  p.prepare(RunConfig());
  // Replace the app: write to the monitor's home (beyond guest RAM).
  vasm::Assembler a(guest::kAppBase);
  a.movi(cpu::kR1, u32{guest::kMonitorBase + 0x40});
  a.movi(cpu::kR0, u32{0xbad});
  a.st32(cpu::kR1, 0, cpu::kR0);
  a.finalize().load(p.machine().mem());

  const auto stop = p.machine().run_until_stopped(seconds_to_cycles(1.0));
  EXPECT_EQ(stop, Machine::StopReason::kGuestExit);  // guest panics itself
  EXPECT_EQ(p.mailbox().last_error, u32{cpu::kVecPf});
  EXPECT_TRUE(p.monitor()->monitor_memory_intact());
  EXPECT_FALSE(p.monitor()->vcpu().crashed);
}

TEST(LvmmProtect, GuestKernelMappingMonitorFramesIsDenied) {
  // A malicious/buggy guest kernel builds page tables that map a virtual
  // page onto a monitor frame, then writes through it. The shadow refuses:
  // the guest sees #PF; with no working IDT it triple-faults (virtually);
  // the monitor survives.
  Platform p(PlatformKind::kLvmm);
  vasm::Assembler a(guest::kKernelBase);
  using namespace vasm;
  using cpu::kR0;
  using cpu::kR1;
  using cpu::kR2;
  using cpu::kSp;
  a.label("entry");
  a.movi(kSp, u32{0x20000});
  // Page directory at 0x40000, one table at 0x41000.
  // PT[16] (va 0x10000..) identity so our code keeps running; PT[0x60]
  // (va 0x60000) -> the monitor's base frame.
  a.movi(kR1, u32{0x40000});
  a.movi(kR0, u32{0x41000 | 7});
  a.st32(kR1, 0, kR0);
  a.movi(kR2, u32{0x41000});
  for (u32 page = 0x10; page <= 0x20; ++page) {  // identity for kernel+stack
    a.movi(kR0, u32{(page << 12) | 3});
    a.st32(kR2, i32(page * 4), kR0);
  }
  a.movi(kR0, u32{guest::kMonitorBase | 3});
  a.st32(kR2, i32(0x60 * 4), kR0);  // va 0x60000 -> monitor frame
  a.movi(kR0, u32{0x40000});
  a.mov_to_cr(cpu::kCr3, kR0);
  a.movi(kR0, u32{1});
  a.mov_to_cr(cpu::kCr0, kR0);
  // Now stab at the monitor through the mapping.
  a.movi(kR1, u32{0x60000});
  a.movi(kR0, u32{0xdeadc0de});
  a.st32(kR1, 0, kR0);
  a.hlt();
  auto prog = a.finalize();

  p.prepare(RunConfig());
  prog.load(p.machine().mem());
  p.machine().cpu().state().pc = *prog.symbol("entry");

  p.machine().run_for(seconds_to_cycles(0.01));
  EXPECT_TRUE(p.monitor()->vcpu().crashed);  // virtual triple fault
  EXPECT_TRUE(p.monitor()->monitor_memory_intact());
  // The machine (and thus the debug environment) is still alive.
  EXPECT_FALSE(p.machine().cpu().shutdown());
}

TEST(LvmmProtect, DmaToMonitorFramesIsRefused) {
  Platform p(PlatformKind::kLvmm);
  // Zero rate + small chunks: the guest's prefetch finishes quickly and the
  // controllers go idle, so our probe request doesn't race guest traffic.
  RunConfig rc;
  rc.chunk_bytes = 64 * 1024;
  p.prepare(rc);
  p.machine().run_for(seconds_to_cycles(0.02));  // boot + prefetch drain
  ASSERT_FALSE(p.machine().disk(0).busy());

  // Host-side: craft a SCSI request targeting the monitor region and ring
  // the first controller's doorbell directly (as the guest could).
  auto& mem = p.machine().mem();
  const PAddr req = 0x00700000;
  mem.write32(req + 0, 0);                       // lba
  mem.write32(req + 4, 16);                      // sectors
  mem.write32(req + 8, guest::kMonitorBase);     // DMA target: monitor!
  p.machine().disk(0).io_write(0x00, req);
  p.machine().disk(0).io_write(0x04, 1);
  p.machine().run_for(seconds_to_cycles(0.01));

  EXPECT_EQ(p.machine().disk(0).io_read(0x0c), u32{hw::ScsiDisk::kDmaError});
  EXPECT_TRUE(p.monitor()->monitor_memory_intact());
}

TEST(LvmmCrash, GuestTripleFaultLeavesMonitorAlive) {
  Platform p(PlatformKind::kLvmm);
  p.prepare(RunConfig());
  p.machine().run_for(seconds_to_cycles(0.01));  // boot to steady state
  ASSERT_EQ(p.mailbox().magic, Mailbox::kMagicValue);

  // Destroy the guest's IDT under it; the next timer injection finds no
  // usable gates, escalates #DF, and virtually triple-faults.
  const auto idt = p.image().kernel.symbol("idt").value();
  for (u32 i = 0; i < guest::kIdtEntries * 8; i += 4) {
    p.machine().mem().write32(idt + i, 0);
  }
  p.machine().run_for(seconds_to_cycles(0.01));

  EXPECT_TRUE(p.monitor()->vcpu().crashed);
  EXPECT_FALSE(p.machine().cpu().shutdown());  // machine survives
  EXPECT_TRUE(p.monitor()->monitor_memory_intact());
  // Contrast with native: the same fault pattern powers the machine off
  // (see CpuTrap.TripleFaultShutsDown).
}

TEST(HostedVmm, BootsAndTransfersWithHostPathCharges) {
  RunConfig rc = RunConfig::for_rate_mbps(20.0);
  rc.stop_after_segments = 16;
  Platform p(PlatformKind::kHosted);
  p.prepare(rc);
  p.sink().set_payload_validator(guest::make_stream_validator(rc));

  const auto stop = p.machine().run_until_stopped(seconds_to_cycles(3.0));
  EXPECT_EQ(stop, Machine::StopReason::kGuestExit);
  p.machine().clear_guest_exit();
  p.machine().run_for(seconds_to_cycles(0.002));

  EXPECT_GE(p.sink().frames(), 16u);
  EXPECT_EQ(p.sink().checksum_errors(), 0u);
  EXPECT_EQ(p.sink().content_errors(), 0u);

  auto* h = p.hosted();
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->hosted_stats().world_switches, 0u);
  EXPECT_GT(h->hosted_stats().host_syscalls, 0u);
  EXPECT_GT(h->hosted_stats().bytes_copied, 16u * 1024u);
  EXPECT_GT(h->hosted_stats().device_accesses, 16u);  // NIC/SCSI all trapped
}

TEST(PlatformCompare, CpuLoadOrderingMatchesThePaper) {
  auto load_at = [](PlatformKind k, double mbps) {
    Platform p(k);
    p.prepare(RunConfig::for_rate_mbps(mbps));
    p.machine().run_for(seconds_to_cycles(0.02));
    const auto probe = p.machine().begin_load_probe();
    p.machine().run_for(seconds_to_cycles(0.03));
    return p.machine().cpu_load(probe);
  };
  const double native = load_at(PlatformKind::kNative, 30.0);
  const double lvmm = load_at(PlatformKind::kLvmm, 30.0);
  const double hosted = load_at(PlatformKind::kHosted, 30.0);
  EXPECT_GT(lvmm, native);
  EXPECT_GT(hosted, lvmm);
}

}  // namespace
}  // namespace vdbg::test

// Harness-layer tests: platform construction, experiment measurement
// properties (the invariants behind Fig. 3.1) and report formatting.
#include <gtest/gtest.h>

#include <sstream>

#include "guest/layout.h"
#include "harness/experiment.h"
#include "harness/report.h"

namespace vdbg::test {
namespace {

using namespace harness;

SweepOptions quick() {
  SweepOptions o;
  o.warmup_seconds = 0.03;
  o.measure_seconds = 0.02;
  return o;
}

TEST(Platform, NamesAreStable) {
  EXPECT_EQ(platform_name(PlatformKind::kNative), "real-hardware");
  EXPECT_EQ(platform_name(PlatformKind::kLvmm), "lvmm");
  EXPECT_EQ(platform_name(PlatformKind::kHosted), "vmware-ws4-like");
}

TEST(Platform, PrepareTwiceThrows) {
  Platform p(PlatformKind::kNative);
  p.prepare(guest::RunConfig());
  EXPECT_THROW(p.prepare(guest::RunConfig()), std::logic_error);
}

TEST(Platform, MonitorPresenceByKind) {
  Platform n(PlatformKind::kNative);
  n.prepare(guest::RunConfig());
  EXPECT_EQ(n.monitor(), nullptr);
  EXPECT_EQ(n.hosted(), nullptr);

  Platform l(PlatformKind::kLvmm);
  l.prepare(guest::RunConfig());
  EXPECT_NE(l.monitor(), nullptr);
  EXPECT_EQ(l.hosted(), nullptr);

  Platform h(PlatformKind::kHosted);
  h.prepare(guest::RunConfig());
  EXPECT_NE(h.monitor(), nullptr);
  EXPECT_NE(h.hosted(), nullptr);
}

TEST(RunConfig, RateHelperConvertsCorrectly) {
  // 80 Mbps = 10 MB/s = 10000 bytes per 1 ms tick.
  EXPECT_EQ(guest::RunConfig::for_rate_mbps(80.0).rate_bytes_per_tick,
            10000u);
}

TEST(RunConfig, ValidationRejectsBadGeometry) {
  cpu::PhysMem mem(1 << 20);
  guest::RunConfig rc;
  rc.segment_bytes = 0;
  EXPECT_THROW(guest::write_run_config(mem, rc), std::invalid_argument);
  rc.segment_bytes = 24;  // not a multiple of 16
  EXPECT_THROW(guest::write_run_config(mem, rc), std::invalid_argument);
  rc.segment_bytes = 1024;
  rc.chunk_bytes = 1500;  // not a multiple of segment
  EXPECT_THROW(guest::write_run_config(mem, rc), std::invalid_argument);
  rc.chunk_bytes = 2048;  // ok: multiple of segment and sector
  guest::write_run_config(mem, rc);
  rc.segment_bytes = 4096;  // exceeds packet buffer with headers
  rc.chunk_bytes = 64 * 1024;
  EXPECT_THROW(guest::write_run_config(mem, rc), std::invalid_argument);
}

TEST(Experiment, MeasurementFieldsPopulated) {
  const auto m = run_point(PlatformKind::kLvmm, 40.0, quick());
  EXPECT_EQ(m.platform, PlatformKind::kLvmm);
  EXPECT_EQ(m.offered_mbps, 40.0);
  EXPECT_GT(m.achieved_mbps, 20.0);
  EXPECT_GT(m.cpu_load, 0.0);
  EXPECT_LT(m.cpu_load, 1.01);
  EXPECT_GT(m.segments_sent, 0u);
  EXPECT_GT(m.vm_exits, 0u);
  EXPECT_TRUE(m.guest_healthy);
  EXPECT_EQ(m.checksum_errors, 0u);
}

TEST(Experiment, LoadIncreasesWithOfferedRate) {
  const auto rows = sweep(PlatformKind::kNative, {30.0, 120.0, 360.0}, quick());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_LT(rows[0].cpu_load, rows[1].cpu_load);
  EXPECT_LT(rows[1].cpu_load, rows[2].cpu_load);
}

TEST(Experiment, SaturationPegsCpu) {
  const auto m = saturation(PlatformKind::kLvmm, quick());
  EXPECT_GT(m.cpu_load, 0.99);
  EXPECT_GT(m.achieved_mbps, 50.0);
  EXPECT_LT(m.achieved_mbps, 500.0);
}

TEST(Report, TableAndCsvContainRows) {
  Measurement m;
  m.platform = PlatformKind::kLvmm;
  m.offered_mbps = 100;
  m.achieved_mbps = 99.5;
  m.cpu_load = 0.5;
  m.segments_sent = 1234;
  std::ostringstream table, csv;
  print_table(table, {m});
  print_csv(csv, {m});
  EXPECT_NE(table.str().find("lvmm"), std::string::npos);
  EXPECT_NE(table.str().find("1234"), std::string::npos);
  EXPECT_NE(csv.str().find("platform,offered_mbps"), std::string::npos);
  EXPECT_NE(csv.str().find("lvmm,100,99.5,0.5,1234"), std::string::npos);
}

}  // namespace
}  // namespace vdbg::test

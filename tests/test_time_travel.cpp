// Time-travel debugging tests: snapshot integrity (byte-identity,
// corruption rejection), the lockstep differential (restore + replay must
// reproduce straight-line execution bit for bit), and reverse execution both
// at the controller level and end-to-end over the RSP wire.
#include <gtest/gtest.h>


#include "common/snapshot.h"
#include "common/units.h"
#include "debug/remote_debugger.h"
#include "guest/layout.h"
#include "guest/minitactix.h"
#include "harness/platform.h"
#include "vmm/stub.h"
#include "vmm/time_travel.h"

namespace vdbg::test {
namespace {

using debug::RemoteDebugger;
using guest::Mailbox;
using guest::RunConfig;
using harness::Platform;
using harness::PlatformKind;
using vmm::TimeTravel;
using MStop = hw::Machine::StopReason;
using Outcome = TimeTravel::ReverseOutcome;
using StopKind = RemoteDebugger::StopKind;

std::unique_ptr<Platform> make_lvmm() {
  auto p = std::make_unique<Platform>(PlatformKind::kLvmm);
  p->prepare(RunConfig::for_rate_mbps(40.0));
  return p;
}

// ------------------------------------------------------------- snapshots --

TEST(TimeTravelSnapshot, SaveRestoreSaveIsByteIdentical) {
  auto p = make_lvmm();
  ASSERT_EQ(p->machine().run_for(seconds_to_cycles(0.02)), MStop::kBudget);

  TimeTravel tt(*p->monitor());
  const auto a = tt.save_state();
  ASSERT_FALSE(a.empty());
  ASSERT_TRUE(tt.load_state(a));
  EXPECT_EQ(tt.save_state(), a);
}

// Every device section individually: save -> restore -> save must reproduce
// the stream byte for byte, with live mid-run state in the devices.
TEST(TimeTravelSnapshot, PerDeviceSectionsRoundTrip) {
  auto p = make_lvmm();
  ASSERT_EQ(p->machine().run_for(seconds_to_cycles(0.02)), MStop::kBudget);
  auto& m = p->machine();

  struct Dev {
    const char* name;
    SnapTag tag;
    std::function<void(SnapshotWriter&)> save;
    std::function<void(SnapshotReader&)> restore;
  };
  const Dev devs[] = {
      {"cpu", SnapTag::kCpu, [&](SnapshotWriter& w) { m.cpu().save(w); },
       [&](SnapshotReader& r) { m.cpu().restore(r); }},
      {"mmu", SnapTag::kMmu, [&](SnapshotWriter& w) { m.cpu().mmu().save(w); },
       [&](SnapshotReader& r) { m.cpu().mmu().restore(r); }},
      {"physmem", SnapTag::kPhysMem, [&](SnapshotWriter& w) { m.mem().save(w); },
       [&](SnapshotReader& r) { m.mem().restore(r); }},
      {"pic", SnapTag::kPic, [&](SnapshotWriter& w) { m.pic().save(w); },
       [&](SnapshotReader& r) { m.pic().restore(r); }},
      {"pit", SnapTag::kPit, [&](SnapshotWriter& w) { m.pit().save(w); },
       [&](SnapshotReader& r) { m.pit().restore(r); }},
      {"uart", SnapTag::kUart, [&](SnapshotWriter& w) { m.uart().save(w); },
       [&](SnapshotReader& r) { m.uart().restore(r); }},
      {"nic", SnapTag::kNic, [&](SnapshotWriter& w) { m.nic().save(w); },
       [&](SnapshotReader& r) { m.nic().restore(r); }},
      {"disk", SnapTag::kScsi, [&](SnapshotWriter& w) { m.disk(0).save(w); },
       [&](SnapshotReader& r) { m.disk(0).restore(r); }},
  };

  for (const Dev& d : devs) {
    SnapshotWriter w1;
    w1.begin_section(d.tag);
    d.save(w1);
    w1.end_section();
    const auto a = w1.finish();

    SnapshotReader r(a);
    ASSERT_TRUE(r.ok()) << d.name;
    ASSERT_TRUE(r.open_section(d.tag)) << d.name;
    d.restore(r);
    ASSERT_TRUE(r.ok()) << d.name;

    SnapshotWriter w2;
    w2.begin_section(d.tag);
    d.save(w2);
    w2.end_section();
    EXPECT_EQ(w2.finish(), a) << d.name << " state not byte-identical";
  }
}

TEST(TimeTravelSnapshot, RejectsCorruptTruncatedAndEmptyStreams) {
  auto p = make_lvmm();
  ASSERT_EQ(p->machine().run_for(seconds_to_cycles(0.01)), MStop::kBudget);

  TimeTravel tt(*p->monitor());
  const auto good = tt.save_state();
  ASSERT_GT(good.size(), 64u);

  EXPECT_FALSE(tt.load_state({}));

  auto truncated = good;
  truncated.resize(truncated.size() - 7);
  EXPECT_FALSE(tt.load_state(truncated));

  auto corrupt = good;
  corrupt[corrupt.size() / 2] ^= 0x5a;  // payload bit-flip: CRC must catch it
  EXPECT_FALSE(tt.load_state(corrupt));

  auto bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(tt.load_state(bad_magic));

  // A rejected stream must leave the machine untouched.
  EXPECT_EQ(tt.save_state(), good);
}

// ------------------------------------------ the replay correctness oracle --

// Restore-then-replay must be bit-identical to uninterrupted execution, at
// every compared boundary. This is the property everything else rests on.
TEST(TimeTravelReplay, LockstepDifferentialMatchesStraightLine) {
  auto p = make_lvmm();
  auto& m = p->machine();
  TimeTravel::Config cfg;
  cfg.interval = 10'000;
  TimeTravel tt(*p->monitor(), cfg);
  tt.enable();

  ASSERT_EQ(m.run_for(seconds_to_cycles(0.01)), MStop::kBudget);
  const u64 base = m.cpu().stats().instructions;
  const u64 points[] = {base + 30'000, base + 60'000, base + 90'000,
                        base + 123'456};

  std::vector<std::vector<u8>> straight;
  for (u64 pt : points) {
    ASSERT_EQ(m.run_to_instruction(pt, seconds_to_cycles(1.0)),
              MStop::kInstrLimit);
    straight.push_back(tt.save_state());
  }

  // Rewind to the first boundary and replay through the same schedule.
  ASSERT_TRUE(tt.load_state(straight[0]));
  ASSERT_EQ(m.cpu().stats().instructions, points[0]);
  for (std::size_t i = 1; i < straight.size(); ++i) {
    ASSERT_EQ(m.run_to_instruction(points[i], seconds_to_cycles(1.0)),
              MStop::kInstrLimit);
    EXPECT_EQ(tt.save_state(), straight[i])
        << "replay diverged from straight-line execution at boundary " << i;
  }
  EXPECT_GE(tt.stats().restores, 1u);
}

// The superblock cache is derived state: restoring a snapshot must drop it
// (its chain edges may reference pre-rollback code), replay must rebuild it
// on demand, and replaying the same window with the tier disabled must
// produce a byte-identical snapshot. The kill switch itself is a host
// tuning knob and must be invisible to the snapshot stream.
TEST(TimeTravelReplay, SuperblockCacheIsDerivedStateAcrossRestore) {
  auto p = make_lvmm();
  auto& m = p->machine();
  TimeTravel tt(*p->monitor());

  ASSERT_EQ(m.run_for(seconds_to_cycles(0.02)), MStop::kBudget);
  const auto& sbc = m.cpu().sbc_stats();
  ASSERT_GT(sbc.hits + sbc.chains, 0u)
      << "the boot workload never exercised the superblock tier";

  const auto snap = tt.save_state();
  ASSERT_FALSE(snap.empty());

  // Kill-switch flips must not change the snapshot stream.
  m.cpu().set_superblocks_enabled(false);
  EXPECT_EQ(tt.save_state(), snap);
  m.cpu().set_superblocks_enabled(true);

  // Restore drops every live superblock (counted as invalidations).
  const u64 inv_before = sbc.invalidations;
  ASSERT_TRUE(tt.load_state(snap));
  EXPECT_GT(sbc.invalidations, inv_before)
      << "restore did not drop the superblock cache";

  // Replay a fixed instruction window with superblocks on...
  const u64 entries_at_restore = sbc.hits + sbc.chains;
  const u64 target = m.cpu().stats().instructions + 50'000;
  ASSERT_EQ(m.run_to_instruction(target, seconds_to_cycles(1.0)),
            MStop::kInstrLimit);
  EXPECT_GT(sbc.hits + sbc.chains, entries_at_restore)
      << "the cache was not rebuilt on demand after restore";
  const auto on_snap = tt.save_state();

  // ...then the identical window from the identical start with the tier
  // off: the machine must land on a byte-identical snapshot.
  ASSERT_TRUE(tt.load_state(snap));
  m.cpu().set_superblocks_enabled(false);
  ASSERT_EQ(m.run_to_instruction(target, seconds_to_cycles(1.0)),
            MStop::kInstrLimit);
  EXPECT_EQ(tt.save_state(), on_snap)
      << "superblock replay diverged from the block-cache tier";
  m.cpu().set_superblocks_enabled(true);
}

// reverse-stepi is restore + replay, so its landing must not depend on
// which tier executes the replay window.
TEST(TimeTravelReplay, ReverseStepiLandsIdenticallyAcrossTiers) {
  auto p = make_lvmm();
  auto& m = p->machine();
  TimeTravel::Config cfg;
  cfg.interval = 5'000;
  TimeTravel tt(*p->monitor(), cfg);
  tt.enable();

  ASSERT_EQ(m.run_for(seconds_to_cycles(0.01)), MStop::kBudget);
  const u64 n = m.cpu().stats().instructions;
  ASSERT_GT(tt.checkpoint_count(), 0u);

  // Reverse-step with the superblock tier live (the default)...
  p->monitor()->freeze_guest(vmm::DebugDelegate::StopReason::kStep);
  ASSERT_EQ(tt.reverse_stepi().outcome, Outcome::kStopped);
  ASSERT_EQ(m.cpu().stats().instructions, n - 1);
  const auto landing_super = tt.save_state();

  // ...return to the boundary, then reverse again with replay pinned to
  // the block-cache tier: the landing must be byte-identical.
  p->monitor()->resume_guest();
  ASSERT_EQ(m.run_to_instruction(n, seconds_to_cycles(1.0)),
            MStop::kInstrLimit);
  m.cpu().set_superblocks_enabled(false);
  p->monitor()->freeze_guest(vmm::DebugDelegate::StopReason::kStep);
  ASSERT_EQ(tt.reverse_stepi().outcome, Outcome::kStopped);
  EXPECT_EQ(m.cpu().stats().instructions, n - 1);
  EXPECT_EQ(tt.save_state(), landing_super)
      << "reverse-stepi landed on different state across tiers";
  m.cpu().set_superblocks_enabled(true);
  p->monitor()->resume_guest();
}

// -------------------------------------------------- controller-level ops --

TEST(TimeTravelReplay, ReverseStepiLandsExactlyOneInstructionEarlier) {
  auto p = make_lvmm();
  auto& m = p->machine();
  TimeTravel::Config cfg;
  cfg.interval = 5'000;
  TimeTravel tt(*p->monitor(), cfg);
  tt.enable();

  ASSERT_EQ(m.run_for(seconds_to_cycles(0.01)), MStop::kBudget);
  const u64 n = m.cpu().stats().instructions;
  ASSERT_GT(tt.checkpoint_count(), 0u);

  p->monitor()->freeze_guest(vmm::DebugDelegate::StopReason::kStep);
  const auto r = tt.reverse_stepi();
  EXPECT_EQ(r.outcome, Outcome::kStopped);
  EXPECT_EQ(r.icount, n - 1);
  EXPECT_EQ(m.cpu().stats().instructions, n - 1);
  EXPECT_TRUE(p->monitor()->guest_frozen());
  EXPECT_GE(tt.stats().replay_passes, 1u);

  // Running forward again reaches the original boundary.
  p->monitor()->resume_guest();
  ASSERT_EQ(m.run_to_instruction(n, seconds_to_cycles(1.0)),
            MStop::kInstrLimit);
  EXPECT_EQ(m.cpu().stats().instructions, n);
}

TEST(TimeTravelReplay, ReverseContinueWithoutHitsLandsOnOldestCheckpoint) {
  auto p = make_lvmm();
  auto& m = p->machine();
  TimeTravel::Config cfg;
  cfg.interval = 5'000;
  cfg.ring = 4;
  TimeTravel tt(*p->monitor(), cfg);
  tt.enable();

  ASSERT_EQ(m.run_for(seconds_to_cycles(0.01)), MStop::kBudget);
  ASSERT_GT(tt.checkpoint_count(), 0u);
  const u64 oldest = tt.checkpoints().front().icount;

  p->monitor()->freeze_guest(vmm::DebugDelegate::StopReason::kStep);
  const auto r = tt.reverse_continue();
  EXPECT_EQ(r.outcome, Outcome::kAtCheckpoint);
  EXPECT_EQ(r.icount, oldest);
  EXPECT_EQ(m.cpu().stats().instructions, oldest);
  EXPECT_TRUE(p->monitor()->guest_frozen());
}

TEST(TimeTravelReplay, ReverseWithoutCheckpointsReportsNoHistory) {
  auto p = make_lvmm();
  auto& m = p->machine();
  TimeTravel tt(*p->monitor());  // never enabled: empty ring

  ASSERT_EQ(m.run_for(seconds_to_cycles(0.005)), MStop::kBudget);
  const u64 n = m.cpu().stats().instructions;
  p->monitor()->freeze_guest(vmm::DebugDelegate::StopReason::kStep);

  EXPECT_EQ(tt.reverse_stepi().outcome, Outcome::kNoHistory);
  EXPECT_EQ(tt.reverse_continue().outcome, Outcome::kNoHistory);
  // State untouched.
  EXPECT_EQ(m.cpu().stats().instructions, n);
  EXPECT_TRUE(p->monitor()->guest_frozen());
}

// ------------------------------------------------- end-to-end over RSP --

struct TtRig {
  TtRig() {
    platform = make_lvmm();
    stub = std::make_unique<vmm::DebugStub>(*platform->monitor(),
                                            platform->machine().uart());
    stub->attach();
    TimeTravel::Config cfg;
    cfg.interval = 2'000;
    cfg.ring = 32;
    tt = std::make_unique<TimeTravel>(*platform->monitor(), cfg);
    stub->set_time_travel(tt.get());
    dbg = std::make_unique<RemoteDebugger>(platform->machine());
    dbg->add_symbols(platform->image().kernel);
    dbg->add_symbols(platform->image().app);
  }

  std::unique_ptr<Platform> platform;
  std::unique_ptr<vmm::DebugStub> stub;
  std::unique_ptr<TimeTravel> tt;
  std::unique_ptr<RemoteDebugger> dbg;
};

// The acceptance scenario: stop on a watchpoint, reverse-step, and land
// exactly one retired guest instruction earlier — then stepping forward
// re-fires the same watchpoint at the same pc and icount.
TEST(TimeTravelRsp, ReverseStepFromWatchpointHit) {
  TtRig rig;
  ASSERT_TRUE(rig.dbg->connect());
  rig.platform->machine().run_for(seconds_to_cycles(0.03));
  rig.tt->enable();

  // First hit: its history window contains the Z2/'c' wire traffic, which
  // replay cannot reproduce. Continuing from it anchors a checkpoint at the
  // resume, so the window up to the SECOND hit is debugger-quiet and
  // replays bit-identically — reverse from there.
  const u32 tick_addr = guest::kMailboxBase + Mailbox::kTicks;
  ASSERT_TRUE(rig.dbg->set_watchpoint(tick_addr, 4));
  ASSERT_EQ(rig.dbg->continue_and_wait(seconds_to_cycles(0.01)),
            StopKind::kBreak);
  ASSERT_NE(rig.dbg->last_stop().find("watch:"), std::string::npos);
  ASSERT_EQ(rig.dbg->continue_and_wait(seconds_to_cycles(0.01)),
            StopKind::kBreak);
  ASSERT_NE(rig.dbg->last_stop().find("watch:"), std::string::npos);
  ASSERT_EQ(rig.dbg->watch_address().value_or(0), tick_addr);
  ASSERT_GT(rig.tt->checkpoint_count(), 0u);

  const auto n0 = rig.dbg->icount();
  ASSERT_TRUE(n0);
  const auto regs0 = rig.dbg->read_registers();
  ASSERT_TRUE(regs0);

  ASSERT_EQ(rig.dbg->reverse_step(), StopKind::kBreak);
  const auto n1 = rig.dbg->icount();
  ASSERT_TRUE(n1);
  EXPECT_EQ(*n1, *n0 - 1) << "reverse-step must land exactly one retired "
                             "instruction earlier";

  // One forward step re-executes the store: same watch, same pc, same icount.
  ASSERT_EQ(rig.dbg->step(), StopKind::kBreak);
  EXPECT_NE(rig.dbg->last_stop().find("watch:"), std::string::npos);
  EXPECT_EQ(rig.dbg->watch_address().value_or(0), tick_addr);
  EXPECT_EQ(rig.dbg->icount().value_or(0), *n0);
  const auto regs1 = rig.dbg->read_registers();
  ASSERT_TRUE(regs1);
  EXPECT_EQ(regs1->pc, regs0->pc);
}

// reverse-continue returns to the LAST watchpoint hit before the current
// position.
TEST(TimeTravelRsp, ReverseContinueLandsOnPreviousWatchHit) {
  TtRig rig;
  ASSERT_TRUE(rig.dbg->connect());
  rig.platform->machine().run_for(seconds_to_cycles(0.03));
  rig.tt->enable();

  // Two hits: continuing from the first anchors a checkpoint at the resume,
  // so the window covering the second hit is debugger-quiet and replayable
  // (see ReverseStepFromWatchpointHit).
  const u32 tick_addr = guest::kMailboxBase + Mailbox::kTicks;
  ASSERT_TRUE(rig.dbg->set_watchpoint(tick_addr, 4));
  ASSERT_EQ(rig.dbg->continue_and_wait(seconds_to_cycles(0.01)),
            StopKind::kBreak);
  ASSERT_EQ(rig.dbg->continue_and_wait(seconds_to_cycles(0.01)),
            StopKind::kBreak);
  ASSERT_NE(rig.dbg->last_stop().find("watch:"), std::string::npos);
  const auto n1 = rig.dbg->icount();
  ASSERT_TRUE(n1);
  const auto regs_hit = rig.dbg->read_registers();
  ASSERT_TRUE(regs_hit);

  // Move a couple of instructions past the hit, then run backwards. (A
  // stepped instruction can retire twice — faulting attempt plus re-run —
  // so read the position back instead of assuming +1 per step.)
  ASSERT_EQ(rig.dbg->step(), StopKind::kBreak);
  ASSERT_EQ(rig.dbg->step(), StopKind::kBreak);
  const auto n2 = rig.dbg->icount();
  ASSERT_TRUE(n2);
  ASSERT_GT(*n2, *n1);

  ASSERT_EQ(rig.dbg->reverse_continue(), StopKind::kBreak);
  EXPECT_NE(rig.dbg->last_stop().find("watch:"), std::string::npos);
  EXPECT_EQ(rig.dbg->watch_address().value_or(0), tick_addr);
  EXPECT_EQ(rig.dbg->icount().value_or(0), *n1);
  const auto regs_back = rig.dbg->read_registers();
  ASSERT_TRUE(regs_back);
  EXPECT_EQ(regs_back->pc, regs_hit->pc);
}

// Reverse without history is refused over the wire (Exx -> kError) and the
// target stays usable.
TEST(TimeTravelRsp, ReverseWithoutHistoryIsRefused) {
  TtRig rig;  // tt never enabled: no checkpoints
  ASSERT_TRUE(rig.dbg->connect());
  rig.platform->machine().run_for(seconds_to_cycles(0.01));
  ASSERT_EQ(rig.dbg->interrupt(), StopKind::kBreak);

  const auto n = rig.dbg->icount();
  ASSERT_TRUE(n);
  EXPECT_EQ(rig.dbg->reverse_step(), StopKind::kError);
  EXPECT_EQ(rig.dbg->reverse_continue(), StopKind::kError);
  EXPECT_EQ(rig.dbg->icount().value_or(0), *n);
  // Still debuggable.
  EXPECT_EQ(rig.dbg->step(), StopKind::kBreak);
  EXPECT_EQ(rig.dbg->icount().value_or(0), *n + 1);
}

// Host-side snapshot slot over the wire: save, run forward, load, and the
// target is back at the saved position and still steppable.
TEST(TimeTravelRsp, SnapshotSaveLoadOverRsp) {
  TtRig rig;
  ASSERT_TRUE(rig.dbg->connect());
  rig.platform->machine().run_for(seconds_to_cycles(0.01));
  ASSERT_EQ(rig.dbg->interrupt(), StopKind::kBreak);

  const auto n0 = rig.dbg->icount();
  ASSERT_TRUE(n0);
  ASSERT_TRUE(rig.dbg->snapshot_save());

  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(rig.dbg->step(), StopKind::kBreak);
  }
  ASSERT_EQ(rig.dbg->icount().value_or(0), *n0 + 3);

  ASSERT_TRUE(rig.dbg->snapshot_load());
  EXPECT_EQ(rig.dbg->icount().value_or(0), *n0);
  EXPECT_EQ(rig.dbg->step(), StopKind::kBreak);
  EXPECT_EQ(rig.dbg->icount().value_or(0), *n0 + 1);
}

// Checkpoint control over the wire.
TEST(TimeTravelRsp, CheckpointQueriesOverRsp) {
  TtRig rig;
  ASSERT_TRUE(rig.dbg->connect());
  rig.platform->machine().run_for(seconds_to_cycles(0.01));
  ASSERT_EQ(rig.dbg->interrupt(), StopKind::kBreak);

  EXPECT_EQ(rig.dbg->checkpoint_count().value_or(99), 0u);
  ASSERT_TRUE(rig.dbg->take_checkpoint());
  EXPECT_EQ(rig.dbg->checkpoint_count().value_or(0), 1u);
}

}  // namespace
}  // namespace vdbg::test

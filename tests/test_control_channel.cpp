// End-to-end tests of the UDP control channel: the streaming appliance
// accepts in-band requests (rate changes, marks) over the NIC receive path
// while transmitting — on all three platforms.
#include <gtest/gtest.h>

#include "common/units.h"
#include "guest/layout.h"
#include "guest/minitactix.h"
#include "harness/platform.h"

namespace vdbg::test {
namespace {

using guest::RunConfig;
using harness::Platform;
using harness::PlatformKind;

double measure_rate(Platform& p, double seconds) {
  p.sink().begin_window(p.machine().now());
  p.machine().run_for(seconds_to_cycles(seconds));
  return p.sink().window_goodput_mbps(p.machine().now());
}

void rate_change_scenario(PlatformKind kind) {
  Platform p(kind);
  p.prepare(RunConfig::for_rate_mbps(30.0));
  p.machine().run_for(seconds_to_cycles(0.06));  // boot + settle

  const double before = measure_rate(p, 0.03);
  EXPECT_NEAR(before, 30.0, 6.0);

  // In-band request: 80 Mbps = 10000 data bytes per tick.
  const auto frame = guest::build_control_frame(guest::kCtrlCmdSetRate, 10000);
  ASSERT_TRUE(p.machine().nic().host_rx_frame(frame, p.machine().now()));
  p.machine().run_for(seconds_to_cycles(0.02));  // absorb + re-pace

  const double after = measure_rate(p, 0.03);
  EXPECT_NEAR(after, 80.0, 12.0);

  const auto mb = p.mailbox();
  EXPECT_EQ(mb.ctrl_requests, 1u);
  EXPECT_EQ(mb.last_ctrl_cmd, guest::kCtrlCmdSetRate);
  EXPECT_EQ(mb.last_ctrl_arg, 10000u);
  EXPECT_EQ(mb.last_error, 0u);
}

TEST(ControlChannel, RateChangeTakesEffectNative) {
  rate_change_scenario(PlatformKind::kNative);
}

TEST(ControlChannel, RateChangeTakesEffectUnderLvmm) {
  rate_change_scenario(PlatformKind::kLvmm);
}

TEST(ControlChannel, RateChangeTakesEffectUnderHostedVmm) {
  Platform p(PlatformKind::kHosted);
  p.prepare(RunConfig::for_rate_mbps(10.0));
  p.machine().run_for(seconds_to_cycles(0.15));
  const auto frame = guest::build_control_frame(guest::kCtrlCmdSetRate, 2500);
  ASSERT_TRUE(p.machine().nic().host_rx_frame(frame, p.machine().now()));
  p.machine().run_for(seconds_to_cycles(0.05));
  const auto mb = p.mailbox();
  EXPECT_EQ(mb.ctrl_requests, 1u);
  EXPECT_EQ(mb.last_ctrl_arg, 2500u);
}

TEST(ControlChannel, MarkCommandRecordsWithoutSideEffects) {
  Platform p(PlatformKind::kLvmm);
  p.prepare(RunConfig::for_rate_mbps(30.0));
  p.machine().run_for(seconds_to_cycles(0.06));
  const u32 rate_before = p.mailbox().ticks;  // just progress proof
  const auto frame =
      guest::build_control_frame(guest::kCtrlCmdMark, 0xfeed0001);
  ASSERT_TRUE(p.machine().nic().host_rx_frame(frame, p.machine().now()));
  p.machine().run_for(seconds_to_cycles(0.02));
  const auto mb = p.mailbox();
  EXPECT_EQ(mb.last_ctrl_cmd, guest::kCtrlCmdMark);
  EXPECT_EQ(mb.last_ctrl_arg, 0xfeed0001u);
  EXPECT_GT(mb.ticks, rate_before);
  // The pacing rate is untouched (still 30 Mbps worth per tick).
  EXPECT_EQ(p.machine().mem().read32(guest::kMailboxBase +
                                     guest::Mailbox::kRateBytesPerTick),
            RunConfig::for_rate_mbps(30.0).rate_bytes_per_tick);
}

TEST(ControlChannel, BadMagicIgnoredStreamUnaffected) {
  RunConfig rc = RunConfig::for_rate_mbps(30.0);
  Platform p(PlatformKind::kLvmm);
  p.prepare(rc);
  p.sink().set_payload_validator(guest::make_stream_validator(rc));
  p.machine().run_for(seconds_to_cycles(0.06));

  auto frame = guest::build_control_frame(guest::kCtrlCmdSetRate, 1);
  frame[44] ^= 0xff;  // corrupt the magic
  ASSERT_TRUE(p.machine().nic().host_rx_frame(frame, p.machine().now()));
  p.machine().run_for(seconds_to_cycles(0.03));

  const auto mb = p.mailbox();
  EXPECT_EQ(mb.ctrl_requests, 0u);  // rejected
  EXPECT_GT(mb.segments_sent, 0u);  // stream alive at the original rate
  EXPECT_EQ(p.sink().content_errors(), 0u);
  EXPECT_EQ(mb.last_error, 0u);
}

TEST(ControlChannel, BurstOfRequestsAllProcessed) {
  Platform p(PlatformKind::kLvmm);
  p.prepare(RunConfig::for_rate_mbps(30.0));
  p.machine().run_for(seconds_to_cycles(0.06));
  for (u32 i = 0; i < 8; ++i) {
    const auto f = guest::build_control_frame(guest::kCtrlCmdMark, 100 + i);
    ASSERT_TRUE(p.machine().nic().host_rx_frame(f, p.machine().now()));
  }
  p.machine().run_for(seconds_to_cycles(0.02));
  const auto mb = p.mailbox();
  EXPECT_EQ(mb.ctrl_requests, 8u);
  EXPECT_EQ(mb.last_ctrl_arg, 107u);
  // Descriptors were recycled: more requests still land.
  for (u32 i = 0; i < 8; ++i) {
    const auto f = guest::build_control_frame(guest::kCtrlCmdMark, 200 + i);
    ASSERT_TRUE(p.machine().nic().host_rx_frame(f, p.machine().now()));
    p.machine().run_for(seconds_to_cycles(0.001));
  }
  p.machine().run_for(seconds_to_cycles(0.01));
  EXPECT_EQ(p.mailbox().ctrl_requests, 16u);
}

}  // namespace
}  // namespace vdbg::test

// Interactive remote-debugger shell against a live MiniTactix under the
// lightweight monitor.
//
//   ./debugger_cli            reads commands from stdin (pipe a script, or
//                             type interactively; `help` lists commands)
//   ./debugger_cli --demo     runs a canned transcript that exercises
//                             breakpoints, watchpoints, tracing and memory
//
// The target streams the paper's disk->UDP workload at 60 Mbps the whole
// time — debug it live, as the paper intends.
#include <iostream>
#include <sstream>
#include <string>

#include "common/units.h"
#include "debug/cli.h"
#include "fleet/multiverse.h"
#include "guest/minitactix.h"
#include "harness/platform.h"
#include "vmm/flight_recorder.h"
#include "vmm/stub.h"
#include "vmm/time_travel.h"
#include "vmm/trace.h"

using namespace vdbg;

int main(int argc, char** argv) {
  harness::Platform platform(harness::PlatformKind::kLvmm);
  platform.prepare(guest::RunConfig::for_rate_mbps(60.0));

  vmm::DebugStub stub(*platform.monitor(), platform.machine().uart());
  stub.attach();
  vmm::ExitTracer tracer;
  platform.monitor()->set_tracer(&tracer);

  // Periodic checkpoints make the reverse-continue / reverse-step commands
  // available (the stub anchors extra checkpoints at every resume).
  vmm::TimeTravel tt(*platform.monitor());
  stub.set_time_travel(&tt);
  tt.enable();

  // `multiverse <k>` / `bugtrap <pred>` fork perturbed COW timelines from
  // a checkpoint taken at the current stop and run them on fleet workers.
  fleet::MultiverseConfig mvcfg;
  mvcfg.run = guest::RunConfig::for_rate_mbps(60.0);
  vmm::MultiverseService multiverse(stub, tt, mvcfg);

  // `metrics [prefix]` and `dump` route through these over the wire.
  stub.set_metrics(&platform.metrics());
  vmm::FlightRecorder::Config fc;
  fc.file_prefix = "debugger-cli-flight";
  vmm::FlightRecorder flight(*platform.monitor(), fc);
  flight.set_metrics(&platform.metrics());
  stub.set_flight_recorder(&flight);

  // The VDBG_FLIGHT_LOOP env hook arms continuous capture on the unit
  // during prepare(); wire it up so `profile` / `history` / `window`
  // answer over this stub.
  if (vmm::FlightLoop* fl = platform.unit().flight_loop()) {
    stub.set_flight_loop(fl);
  }

  debug::RemoteDebugger dbg(platform.machine());
  dbg.add_symbols(platform.image().kernel);
  dbg.add_symbols(platform.image().app);
  if (!dbg.connect()) {
    std::cerr << "stub did not answer\n";
    return 1;
  }
  std::cout << "connected to MiniTactix under the LVMM (streaming at "
               "60 Mbps). Type 'help'.\n";

  debug::DebuggerCli cli(dbg, platform.machine(), std::cout);

  const bool demo = argc > 1 && std::string(argv[1]) == "--demo";
  if (demo) {
    std::istringstream script(
        "run 30\n"
        "int\n"
        "regs\n"
        "disas\n"
        "break isr_nic\n"
        "c\n"
        "regs\n"
        "delete isr_nic\n"
        "x 0x1000 48\n"
        "watch 0x1004\n"
        "c\n"
        "c\n"
        "reverse-step\n"
        "regs\n"
        "s\n"
        "reverse-continue\n"
        "unwatch 0x1004\n"
        "c 1\n"
        "trace on\n"
        "run 5\n"
        "trace show 6\n"
        "run 20\n"
        "status\n"
        "quit\n");
    cli.run(script, /*echo=*/true);
    return 0;
  }
  cli.run(std::cin, /*echo=*/false);
  return 0;
}

// Fleet flight-loop walkthrough: run an 8-machine fleet with continuous
// capture armed on every machine (checkpoint ring + trace-ring tail +
// metrics time series + deterministic PC profiler), then merge the whole
// fleet into one Perfetto (Chrome trace-event JSON) file: per-machine
// tracks in simulated time, the host worker schedule with flow arrows, and
// counter tracks sampled from each machine's flight-loop series.
//
// Usage: fleet_flight_demo [out_dir]
//
// Prints "trace=<path>" on success; CI's check_trace_json.py --run-fleet
// drives this binary and validates the merged trace's shape.
#include <cstdio>
#include <fstream>

#include "common/units.h"
#include "fleet/fleet.h"
#include "fleet/perfetto_export.h"
#include "guest/minitactix.h"

using namespace vdbg;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  fleet::FleetConfig fc;
  fc.machines = 8;
  fc.threads = 4;
  fc.run = guest::RunConfig::for_rate_mbps(40.0);
  fc.budget = seconds_to_cycles(0.02);
  fc.slice = 1'000'000;  // many slices per machine -> a real schedule
  fc.flight_loop = true;
  fc.flight.interval = 100'000;      // checkpoint every 100k instructions
  fc.flight.profile_interval = 5'000;  // PC sample every 5k instructions
  fleet::Fleet fleet(fc);

  const auto statuses = fleet.run();
  unsigned done = 0;
  for (const auto& st : statuses) done += st.done;
  std::printf("fleet done: %u/%u machines\n", done, fleet.size());

  // Every machine can answer "replay the last N instructions" right now;
  // its hot-PC histogram lands next to the trace as flamegraph-ready
  // folded-stack text.
  for (unsigned i = 0; i < fleet.size(); ++i) {
    const vmm::FlightLoop* fl = fleet.unit(i).flight_loop();
    if (fl == nullptr) continue;
    const auto& prof = fleet.unit(i).machine().cpu().profiler();
    std::printf("machine%u: replayable window %llu instructions, "
                "%llu profiler samples\n",
                i,
                static_cast<unsigned long long>(fl->replayable_instructions()),
                static_cast<unsigned long long>(prof.samples()));
    const std::string folded_path =
        out_dir + "/machine" + std::to_string(i) + ".folded";
    std::ofstream folded(folded_path, std::ios::trunc);
    folded << prof.folded();
    if (folded) std::printf("folded=%s\n", folded_path.c_str());
  }

  const std::string json = fleet::fleet_perfetto_json(fleet);
  const std::string path = out_dir + "/fleet-flight-trace.json";
  std::ofstream out(path, std::ios::trunc);
  out << json;
  out.close();
  if (!out) {
    std::printf("fleet_flight_demo: cannot write %s\n", path.c_str());
    return 1;
  }

  std::printf("trace=%s\n", path.c_str());
  std::printf("open the file in https://ui.perfetto.dev: machine tracks in\n"
              "simulated time, the worker schedule in host time, and\n"
              "counter tracks from each machine's metrics series.\n");
  return 0;
}

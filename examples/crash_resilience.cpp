// The paper's stability claim, demonstrated: inject a wild-pointer bug into
// the OS under development and compare what remains of the debugging
// environment afterwards.
//
//   * On real hardware with an in-kernel stub, the kernel's triple fault
//     takes the whole machine down — nothing left to debug with.
//   * Under the lightweight monitor, the same bug crashes only the guest;
//     the monitor's stub keeps answering, and the developer gets registers,
//     memory and a disassembly of the crash site post-mortem.
#include <cstdio>

#include "asm/assembler.h"
#include "common/units.h"
#include "debug/remote_debugger.h"
#include "guest/layout.h"
#include "guest/minitactix.h"
#include "harness/platform.h"
#include "vmm/stub.h"

using namespace vdbg;

namespace {

/// Replaces the guest app with a buggy one: it streams briefly, then follows
/// a wild pointer into the guest's own IDT and scribbles over it; the next
/// interrupt finds no usable gates and the kernel triple-faults.
void plant_bug(harness::Platform& p) {
  const u32 idt = p.image().kernel.symbol("idt").value();
  vasm::Assembler a(guest::kAppBase);
  using namespace vasm;
  a.label("app_entry");
  // Busy-wait ten ticks so the collateral IDT corruption (applied by
  // main() at ~5 ms) lands before the wild store detonates.
  a.movi(cpu::kR6, u32{guest::kMailboxBase});
  a.ld32(cpu::kR4, cpu::kR6, i32(guest::Mailbox::kTicks));
  a.label("wait");
  a.ld32(cpu::kR0, cpu::kR6, i32(guest::Mailbox::kTicks));
  a.sub(cpu::kR1, cpu::kR0, cpu::kR4);
  a.cmpi(cpu::kR1, u32{10});
  a.jb(l("wait"));
  // The "bug": a stray store loop over the IDT... but the IDT is a kernel
  // page, so from user mode this first faults; the fault handler IS the
  // IDT, which we corrupt via a second bug in the kernel's timer ISR.
  // Simplest faithful wild write: user-mode store to the IDT -> #PF ->
  // panic handler -> but we ALSO corrupted the #PF gate? To keep the
  // injection honest we scribble through a syscall-less path: the store
  // below faults and the pre-corrupted gates (done host-side in main) turn
  // it into a triple fault.
  a.movi(cpu::kR1, u32{idt});
  a.movi(cpu::kR0, u32{0xdeadbeef});
  a.st32(cpu::kR1, 0, cpu::kR0);
  a.label("spin");
  a.jmp(l("spin"));
  a.finalize().load(p.machine().mem());
}

void corrupt_idt(harness::Platform& p) {
  const u32 idt = p.image().kernel.symbol("idt").value();
  for (u32 i = 0; i < guest::kIdtEntries * 8; i += 4) {
    p.machine().mem().write32(idt + i, 0x00dead00);
  }
}

}  // namespace

int main() {
  std::printf("=== scenario 1: the bug on real hardware ===\n");
  {
    harness::Platform p(harness::PlatformKind::kNative);
    p.prepare(guest::RunConfig::for_rate_mbps(60.0));
    plant_bug(p);
    p.machine().run_for(seconds_to_cycles(0.005));
    corrupt_idt(p);  // the wild write's collateral damage
    p.machine().run_for(seconds_to_cycles(0.03));
    std::printf("machine state: %s\n",
                p.machine().cpu().shutdown()
                    ? "TRIPLE FAULT - machine reset, debug session lost"
                    : "still running");
  }

  std::printf("\n=== scenario 2: the same bug under the lightweight monitor "
              "===\n");
  harness::Platform p(harness::PlatformKind::kLvmm);
  p.prepare(guest::RunConfig::for_rate_mbps(60.0));
  plant_bug(p);  // before anything runs: the buggy app ships in the image
  vmm::DebugStub stub(*p.monitor(), p.machine().uart());
  stub.attach();
  debug::RemoteDebugger dbg(p.machine());
  dbg.add_symbols(p.image().kernel);
  dbg.add_symbols(p.image().app);
  dbg.connect();

  p.machine().run_for(seconds_to_cycles(0.005));
  corrupt_idt(p);
  p.machine().run_for(seconds_to_cycles(0.03));

  std::printf("machine state: %s\n", p.machine().cpu().shutdown()
                                         ? "shut down"
                                         : "running (monitor alive)");
  std::printf("guest state:   %s\n",
              dbg.target_crashed() ? "crashed (virtual triple fault)"
                                   : "running");
  std::printf("monitor mem:   %s\n",
              dbg.monitor_intact() ? "intact (canary verified)" : "CORRUPT");

  std::printf("\npost-mortem over the serial link:\n");
  const auto regs = dbg.read_registers();
  if (!regs) {
    std::printf("  (stub unreachable)\n");
    return 1;
  }
  std::printf("  pc  = %08x  (%s)\n", regs->pc,
              dbg.describe(regs->pc).c_str());
  std::printf("  sp  = %08x  psw = %08x\n", regs->r[7], regs->psw);
  std::printf("  disassembly at the crash site:\n");
  for (const auto& line : dbg.disassemble(regs->pc & ~7u, 3)) {
    std::printf("    %s\n", line.c_str());
  }
  const auto mb = dbg.read_memory(guest::kMailboxBase, 0x30);
  if (mb) {
    const auto w = [&](u32 off) {
      return u32((*mb)[off]) | (u32((*mb)[off + 1]) << 8) |
             (u32((*mb)[off + 2]) << 16) | (u32((*mb)[off + 3]) << 24);
    };
    std::printf("  guest had sent %u segments over %u ticks before dying\n",
                w(guest::Mailbox::kSegmentsSent), w(guest::Mailbox::kTicks));
  }

  const bool ok = !p.machine().cpu().shutdown() && dbg.target_crashed() &&
                  dbg.monitor_intact() && regs.has_value();
  std::printf("\ncrash_resilience: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

// The paper's motivating scenario: a streaming appliance server (the
// HiTactix use case of Le Moal et al., ACM MM'02) pushing paced media
// streams from SCSI disks onto a gigabit network. Runs the same guest at a
// chosen rate on all three platforms and compares CPU load, answering the
// operator's question: "how much debugging headroom does each environment
// leave me at my production bit rate?"
//
// Usage: streaming_server [rate_mbps]   (default 150)
#include <cstdio>
#include <cstdlib>

#include "common/units.h"
#include "guest/layout.h"
#include "guest/minitactix.h"
#include "harness/experiment.h"

using namespace vdbg;
using namespace vdbg::harness;

int main(int argc, char** argv) {
  const double rate = argc > 1 ? std::atof(argv[1]) : 150.0;
  if (rate <= 0 || rate > 1000) {
    std::fprintf(stderr, "usage: %s [rate_mbps in (0,1000]]\n", argv[0]);
    return 2;
  }

  // A media stream of ~4 Mbps per client: how many clients is this rate?
  const int clients = static_cast<int>(rate / 4.0);
  std::printf("streaming workload: %.0f Mbps total (~%d MPEG-2 clients), "
              "1 KiB segments from 3 SCSI disks\n\n",
              rate, clients);

  SweepOptions opt;
  std::printf("%-18s %10s %10s %8s %12s\n", "platform", "offered",
              "achieved", "load%", "verdict");
  for (auto kind :
       {PlatformKind::kNative, PlatformKind::kLvmm, PlatformKind::kHosted}) {
    const auto m = run_point(kind, rate, opt);
    const bool keeps_up = m.achieved_mbps > rate * 0.95;
    const char* verdict = !m.guest_healthy ? "guest sick"
                          : keeps_up       ? "keeps up"
                                           : "SATURATED";
    std::printf("%-18s %10.1f %10.1f %8.1f %12s\n",
                std::string(platform_name(kind)).c_str(), m.offered_mbps,
                m.achieved_mbps, m.cpu_load * 100.0, verdict);
  }

  std::printf(
      "\nReading: the lightweight monitor keeps debuggability at rates a\n"
      "hosted VMM cannot carry at all; native shows the no-debug ceiling.\n");

  // Live operation: send an in-band UDP control request to the appliance
  // (running under the LVMM) and watch the stream re-pace, no restart.
  std::printf("\n--- live rate change over the UDP control channel ---\n");
  Platform live(PlatformKind::kLvmm);
  live.prepare(guest::RunConfig::for_rate_mbps(rate / 2));
  live.machine().run_for(seconds_to_cycles(0.08));
  live.sink().begin_window(live.machine().now());
  live.machine().run_for(seconds_to_cycles(0.04));
  std::printf("streaming at %.1f Mbps; sending SetRate(%.0f Mbps) request\n",
              live.sink().window_goodput_mbps(live.machine().now()), rate);
  const auto req = guest::build_control_frame(
      guest::kCtrlCmdSetRate,
      guest::RunConfig::for_rate_mbps(rate).rate_bytes_per_tick);
  live.machine().nic().host_rx_frame(req, live.machine().now());
  live.machine().run_for(seconds_to_cycles(0.02));
  live.sink().begin_window(live.machine().now());
  live.machine().run_for(seconds_to_cycles(0.04));
  std::printf("appliance re-paced to %.1f Mbps (requests handled: %u)\n",
              live.sink().window_goodput_mbps(live.machine().now()),
              live.mailbox().ctrl_requests);
  return 0;
}

// Flight-recorder walkthrough: boot the guest under the lightweight
// monitor with tracing on, let a planted wild-pointer bug triple-fault it,
// and write the post-mortem bundle — a JSON summary plus a Chrome
// trace-event (catapult) JSON of the trace tail, loadable in Perfetto.
//
// Usage: flight_dump_demo [out_dir]
//
// Prints "summary=<path>" and "trace=<path>" on success; CI's
// check_trace_json.py --run drives this binary and validates the trace.
#include <cstdio>

#include "common/units.h"
#include "guest/layout.h"
#include "guest/minitactix.h"
#include "harness/platform.h"
#include "vmm/flight_recorder.h"
#include "vmm/trace.h"

using namespace vdbg;

namespace {

/// Wrecks the guest's IDT so the next interrupt finds no usable gates and
/// the kernel virtual-triple-faults (see crash_resilience.cpp for the
/// full wild-pointer story; here the collateral damage is enough).
void corrupt_idt(harness::Platform& p) {
  const u32 idt = p.image().kernel.symbol("idt").value();
  for (u32 i = 0; i < guest::kIdtEntries * 8; i += 4) {
    p.machine().mem().write32(idt + i, 0x00dead00);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  harness::Platform p(harness::PlatformKind::kLvmm);
  p.prepare(guest::RunConfig::for_rate_mbps(60.0));

  vmm::ExitTracer tracer(4096);
  tracer.set_enabled(true);
  p.monitor()->set_tracer(&tracer);

  vmm::FlightRecorder::Config fc;
  fc.out_dir = out_dir;
  fc.file_prefix = "flight-demo";
  fc.dump_on_crash = false;  // capture in memory; we write explicitly below
  vmm::FlightRecorder fr(*p.monitor(), fc);
  fr.set_metrics(&p.metrics());
  fr.arm();

  p.machine().run_for(seconds_to_cycles(0.02));  // healthy streaming
  corrupt_idt(p);
  p.machine().run_for(seconds_to_cycles(0.03));  // next tick detonates

  if (!p.monitor()->vcpu().crashed || fr.captures() == 0) {
    std::printf("flight_dump_demo: guest did not crash as planned\n");
    return 1;
  }

  std::string summary, trace;
  if (!fr.dump("demo-post-mortem", &summary, &trace)) {
    std::printf("flight_dump_demo: cannot write to %s\n", out_dir.c_str());
    return 1;
  }
  std::printf("guest crashed; monitor intact: %s\n",
              p.monitor()->monitor_memory_intact() ? "yes" : "NO");
  std::printf("summary=%s\n", summary.c_str());
  std::printf("trace=%s\n", trace.c_str());
  std::printf("open the trace file in https://ui.perfetto.dev to see the\n"
              "interrupt-delivery spans and the crash instant.\n");
  return 0;
}

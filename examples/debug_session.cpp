// A complete remote-debugging session against a live, streaming OS — the
// workflow of the paper's Fig. 2.1, scripted:
//
//   host debugger ==serial==> monitor stub ==> guest OS (MiniTactix)
//
//   1. attach while the guest streams disk->UDP traffic,
//   2. break in asynchronously and inspect registers/symbols,
//   3. plant a breakpoint in the NIC interrupt handler, hit it mid-I/O,
//   4. walk the guest's mailbox and disassemble around the stop,
//   5. single-step a few instructions,
//   6. resume and confirm the stream continued without corruption.
#include <cstdio>

#include "common/units.h"
#include "debug/remote_debugger.h"
#include "guest/layout.h"
#include "guest/minitactix.h"
#include "harness/platform.h"
#include "vmm/stub.h"

using namespace vdbg;
using debug::RemoteDebugger;
using StopKind = RemoteDebugger::StopKind;

int main() {
  harness::Platform platform(harness::PlatformKind::kLvmm);
  auto rc = guest::RunConfig::for_rate_mbps(60.0);
  platform.prepare(rc);
  platform.sink().set_payload_validator(guest::make_stream_validator(rc));

  vmm::DebugStub stub(*platform.monitor(), platform.machine().uart());
  stub.attach();

  RemoteDebugger dbg(platform.machine());
  dbg.add_symbols(platform.image().kernel);
  dbg.add_symbols(platform.image().app);

  std::printf("[host] connecting over the serial link...\n");
  if (!dbg.connect()) {
    std::printf("[host] stub did not answer\n");
    return 1;
  }
  std::printf("[host] connected; letting the target stream for 30 ms\n");
  platform.machine().run_for(seconds_to_cycles(0.03));

  std::printf("[host] ^C break-in\n");
  if (dbg.interrupt() != StopKind::kBreak) return 1;
  auto regs = *dbg.read_registers();
  std::printf("[host] stopped at pc=%08x (%s), sp=%08x\n", regs.pc,
              dbg.describe(regs.pc).c_str(), regs.r[7]);

  const u32 isr_nic = dbg.lookup("isr_nic").value();
  std::printf("[host] setting breakpoint at isr_nic (%08x)\n", isr_nic);
  dbg.set_breakpoint(isr_nic);

  std::printf("[host] continue...\n");
  if (dbg.continue_and_wait(seconds_to_cycles(0.1)) != StopKind::kBreak) {
    return 1;
  }
  regs = *dbg.read_registers();
  std::printf("[host] hit breakpoint at %s while the guest was mid-I/O\n",
              dbg.describe(regs.pc).c_str());

  std::printf("[host] disassembly at the stop:\n");
  for (const auto& line : dbg.disassemble(regs.pc, 4)) {
    std::printf("         %s\n", line.c_str());
  }

  const auto mb = dbg.read_memory(guest::kMailboxBase, 0x30).value();
  auto word = [&](u32 off) {
    return u32(mb[off]) | (u32(mb[off + 1]) << 8) | (u32(mb[off + 2]) << 16) |
           (u32(mb[off + 3]) << 24);
  };
  std::printf("[host] guest mailbox: ticks=%u segments=%u tx_done=%u "
              "syscalls=%u\n",
              word(guest::Mailbox::kTicks),
              word(guest::Mailbox::kSegmentsSent),
              word(guest::Mailbox::kTxCompletions),
              word(guest::Mailbox::kSyscalls));

  std::printf("[host] single-stepping 3 instructions:\n");
  for (int i = 0; i < 3; ++i) {
    if (dbg.step() != StopKind::kBreak) return 1;
    regs = *dbg.read_registers();
    std::printf("         pc=%08x  %s\n", regs.pc,
                dbg.describe(regs.pc).c_str());
  }

  std::printf("[host] clearing breakpoint, resuming for 50 ms\n");
  dbg.clear_breakpoint(isr_nic);
  dbg.continue_and_wait(seconds_to_cycles(0.002));  // returns by timeout
  platform.machine().run_for(seconds_to_cycles(0.05));

  const auto& sink = platform.sink();
  std::printf("[host] stream after the session: frames=%llu gaps=%llu "
              "checksum_errors=%llu content_errors=%llu\n",
              (unsigned long long)sink.frames(),
              (unsigned long long)sink.sequence_gaps(),
              (unsigned long long)sink.checksum_errors(),
              (unsigned long long)sink.content_errors());

  const bool ok = sink.frames() > 0 && sink.checksum_errors() == 0 &&
                  sink.content_errors() == 0 &&
                  platform.mailbox().last_error == 0;
  std::printf("\ndebug_session: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

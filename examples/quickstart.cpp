// Quickstart: the smallest end-to-end use of the library.
//
// Boots the MiniTactix guest OS under the lightweight virtual machine
// monitor, streams the paper's disk->UDP workload for a simulated quarter
// second at 100 Mbps, and prints what happened: guest counters, monitor
// VM-exit statistics, and what the receiving end of the wire saw.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "common/units.h"
#include "guest/layout.h"
#include "guest/minitactix.h"
#include "harness/platform.h"

using namespace vdbg;

int main() {
  // 1. A platform bundles the simulated PC/AT machine, the guest image and
  //    (here) the lightweight monitor.
  harness::Platform platform(harness::PlatformKind::kLvmm);

  // 2. Configure the workload: 100 Mbps of 1 KiB UDP segments cut from
  //    2 MiB reads striped over the three SCSI disks.
  platform.prepare(guest::RunConfig::for_rate_mbps(100.0));

  // 3. Validate everything that crosses the wire against the disk content.
  auto rc = platform.run_config();
  platform.sink().set_payload_validator(guest::make_stream_validator(rc));

  // 4. Run a quarter of a simulated second.
  platform.machine().run_for(seconds_to_cycles(0.25));

  // 5. Report.
  const auto mb = platform.mailbox();
  const auto& sink = platform.sink();
  const auto& exits = platform.monitor()->exit_stats();

  std::printf("guest:   booted=%s ticks=%u segments=%u disk_reads=%u "
              "syscalls=%u errors=%u\n",
              mb.magic == guest::Mailbox::kMagicValue ? "yes" : "NO",
              mb.ticks, mb.segments_sent, mb.disk_reads, mb.syscalls,
              mb.last_error);
  std::printf("monitor: vm_exits=%llu (privileged=%llu io=%llu intr=%llu "
              "inject=%llu shadow=%llu) intact=%s\n",
              (unsigned long long)exits.total,
              (unsigned long long)exits.privileged_instr,
              (unsigned long long)exits.io_emulated,
              (unsigned long long)exits.interrupts,
              (unsigned long long)exits.injections,
              (unsigned long long)exits.shadow_syncs,
              platform.monitor()->monitor_memory_intact() ? "yes" : "NO");
  std::printf("wire:    frames=%llu bytes=%llu checksum_errors=%llu "
              "gaps=%llu content_errors=%llu\n",
              (unsigned long long)sink.frames(),
              (unsigned long long)sink.payload_bytes(),
              (unsigned long long)sink.checksum_errors(),
              (unsigned long long)sink.sequence_gaps(),
              (unsigned long long)sink.content_errors());

  const bool ok = mb.magic == guest::Mailbox::kMagicValue &&
                  mb.last_error == 0 && sink.frames() > 0 &&
                  sink.checksum_errors() == 0 && sink.content_errors() == 0;
  std::printf("\nquickstart: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

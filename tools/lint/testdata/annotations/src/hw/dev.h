// Fixture: every annotation form parses and silences its checker; this
// whole tree must lint clean.
#pragma once

#include "common/snapshot.h"

namespace fix {

class Dev {
 public:
  void save(SnapshotWriter& w) const {
    w.put_u32(state_);
    w.put_u64(event_);
  }
  void restore(SnapshotReader& r) {
    event_ = 0;
    state_ = r.get_u32();
    event_ = r.get_u64();
  }

 private:
  EventQueue& eq_;  // wiring by construction, no annotation needed
  u32 state_ = 0;
  Sink* sink_ = nullptr;  // snap:skip(host callback wiring)
  // Reset before the serialized fields are read back, then re-armed.
  // snap:reorder(reset-before-read)
  u64 event_ = 0;
};

}  // namespace fix

// Fixture: charge annotations on exit-handler functions.
#include "vmm/demo.h"

namespace fix {

// charge:covered(terminal; the run ends, accounting is moot)
void Vmm::bail_out() {
  freeze();
}

// The guard path defers to the charge:covered sink above.
void Vmm::emulate_op(u32 op) {
  if (op == 0) {
    bail_out();
    return;
  }
  charge(costs_.exit_base);
}

// charge:exempt(pure classifier; the dispatcher charges on entry)
bool Vmm::is_handled(u32 op) const {
  return op < 16;
}

}  // namespace fix

// Fixture: a line-level host-boundary waiver inside a checked layer.
#include "cpu/tick.h"

namespace fix {

u64 Tick::startup_stamp() {
  return time(nullptr);  // det:host-boundary(logged once at boot, not replayed)
}

}  // namespace fix

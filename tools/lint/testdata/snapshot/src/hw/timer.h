// Fixture: snapshot completeness and order checking.
#pragma once

#include "common/snapshot.h"

namespace fix {

// Pass case: every member is serialized, skipped with a reason, or wiring.
class GoodTimer {
 public:
  void save(SnapshotWriter& w) const {
    w.put_u32(count_);
    w.put_u32(period_);
  }
  void restore(SnapshotReader& r) {
    count_ = r.get_u32();
    period_ = r.get_u32();
  }

 private:
  EventQueue& eq_;  // references are wiring by construction
  u32 count_ = 0;
  u32 period_ = 0;
  u32 scratch_ = 0;  // snap:skip(recomputed on first tick)
};

// Fail case: a half-serialized member, a forgotten member, and a restore
// order that does not match save.
class BadTimer {
 public:
  void save(SnapshotWriter& w) const {
    w.put_u32(a_);
    w.put_u32(b_);
    w.put_u32(half_);
  }
  void restore(SnapshotReader& r) {
    b_ = r.get_u32();
    a_ = r.get_u32();
  }

 private:
  u32 a_ = 0;
  u32 b_ = 0;
  u32 half_ = 0;       // saved but never restored
  u32 forgotten_ = 0;  // in neither method
};

}  // namespace fix

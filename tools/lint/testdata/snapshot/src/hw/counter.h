// Fixture: out-of-line save/restore bodies are resolved across files.
#pragma once

#include "common/snapshot.h"

namespace fix {

class Counter {
 public:
  void save(SnapshotWriter& w) const;
  void restore(SnapshotReader& r);

 private:
  u64 ticks_ = 0;
  u64 rollovers_ = 0;  // seeded gap: save() below forgets this one
};

}  // namespace fix

#include "hw/counter.h"

namespace fix {

void Counter::save(SnapshotWriter& w) const {
  w.put_u64(ticks_);
}

void Counter::restore(SnapshotReader& r) {
  ticks_ = r.get_u64();
  rollovers_ = 0;
}

}  // namespace fix

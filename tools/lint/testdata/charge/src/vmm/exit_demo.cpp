// Fixture: charge discipline in exit-handler files.
#include "vmm/demo.h"

namespace fix {

// Pass: charges up front, every later return is covered.
void Vmm::emulate_good(u32 op) {
  charge(costs_.exit_base);
  if (op == 0) return;
  ++stats_.ops;
}

// Pass: every switch case charges directly or defers to a proven sink.
void Vmm::emulate_switch(u32 op) {
  switch (op) {
    case 0:
      charge(costs_.a);
      return;
    case 1:
      handle_sub(op);
      return;
    default:
      charge(costs_.b);
      return;
  }
}

// Becomes a sink by fixpoint: it charges on every path, so calling it
// covers the caller's path too.
void Vmm::handle_sub(u32 op) {
  if (op > 4) {
    charge(costs_.big);
    return;
  }
  charge(costs_.a);
}

// charge:exempt(decode helper; callers charge per outcome)
bool Vmm::decode(u32 op) {
  return op != 0;
}

// Fail: the op == 1 path returns without charging.
void Vmm::emulate_bad(u32 op) {
  if (op == 1) return;
  charge(costs_.exit_base);
}

// Fail: charges twice on the fall-through path.
void Vmm::emulate_double(u32 op) {
  charge(costs_.exit_base);
  if (op == 2) return;
  charge(costs_.a);
}

// Fail: can fall off the end without charging.
void Vmm::emulate_leak(u32 op) {
  if (op == 3) {
    charge(costs_.exit_base);
    return;
  }
  ++stats_.ops;
}

}  // namespace fix

// metric-name fixture: the profiler's cpu.profile family registers clean
// from its owning layer.
#pragma once

struct MetricsRegistry;

struct Profiler {
  unsigned long long samples = 0;

  void register_metrics(MetricsRegistry& reg) {
    // good: cpu.profile is owned by cpu
    reg.add_counter("cpu.profile.samples", &samples);
    reg.add_gauge("cpu.profile.interval", nullptr);
  }
};

// metric-name fixture: good and bad registration sites.
#pragma once

struct MetricsRegistry {
  bool add_counter(const char* name, const unsigned long long* slot);
  bool add_gauge(const char* name, double (*fn)());
  bool add_histogram(const char* name, const unsigned* buckets, int n);
};

struct Dev {
  unsigned long long ticks = 0;
  unsigned hist[4] = {};

  void register_metrics(MetricsRegistry& reg, const char* prefix) {
    // good: three and four lowercase segments in an hw-owned family
    reg.add_counter("hw.nic.ticks", &ticks);
    reg.add_histogram("hw.nic.latency.log2", hist, 4);
    // good: a dynamically built name is the registry's runtime problem,
    // not the linter's
    reg.add_counter(prefix, &ticks);
    // bad: two segments only
    reg.add_counter("hw.ticks", &ticks);
    // bad: uppercase characters
    reg.add_counter("hw.dev.Ticks", &ticks);
    // bad: empty segment
    reg.add_gauge("hw..rate", nullptr);
    // bad: trailing dot
    reg.add_counter("hw.dev.ticks.", &ticks);
    // bad: well-formed name, but "hw.dev" is not in the family table
    reg.add_counter("hw.dev.ticks", &ticks);
    // bad: vmm.flight is owned by the vmm layer, not hw
    reg.add_counter("vmm.flight.checkpoints", &ticks);
  }
};

// metric-name fixture: fleet-owned families register clean from fleet;
// a cpu-owned family registered here is a layer violation.
#pragma once

struct MetricsRegistry;

struct SeriesRing {
  unsigned long long points = 0;

  void register_metrics(MetricsRegistry& reg) {
    // good: fleet.series and vmm.multiverse are both fleet-owned
    reg.add_counter("fleet.series.points", &points);
    reg.add_counter("vmm.multiverse.forks", &points);
    // bad: cpu.profile belongs to the cpu layer
    reg.add_counter("cpu.profile.evictions", &points);
  }
};

// Miniature host channel mirroring the fleet Slot protocol: one mutex, two
// guarded fields — one via the VDBG_GUARDED_BY macro, one via the comment
// form — so the fixture exercises both annotation spellings.
#pragma once

#include <string>

namespace vdbg::fleet {

class Channel {
 public:
  void push(const std::string& bytes);
  std::string drain();
  std::string peek_unlocked();
  void append_locked(const std::string& b);
  void push_async();
  void clear_for_tests();
  void toggle_relock();
  void empty_reason();
  std::size_t stale_waiver_fn();

 private:
  mutable vdbg::Mutex mu;
  std::string buf VDBG_GUARDED_BY(mu);
  bool closed = false;  // guard:by(mu)
};

}  // namespace vdbg::fleet

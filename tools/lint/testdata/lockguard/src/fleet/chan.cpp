#include "fleet/chan.h"

namespace vdbg::fleet {

// Correct: the RAII lock covers the whole body.
void Channel::push(const std::string& bytes) {
  vdbg::MutexLock lk(mu);
  buf += bytes;
  closed = false;
}

// Correct: std::lock_guard is recognized too.
std::string Channel::drain() {
  std::lock_guard<vdbg::Mutex> lk(mu);
  std::string out;
  out.swap(buf);
  return out;
}

// Seeded violation: reads a guarded field with no lock held.
std::string Channel::peek_unlocked() {
  return buf;
}

// Correct: the precondition annotation transfers the obligation to callers.
// guard:held(mu)
void Channel::append_locked(const std::string& b) {
  buf += b;
}

// Seeded violation: the lambda body may run on another thread after the
// lock is gone, so the held set resets inside it.
void Channel::push_async() {
  vdbg::MutexLock lk(mu);
  auto deferred = [this] { buf.clear(); };
  deferred();
}

// Waived with a reason: fine.
void Channel::clear_for_tests() {
  buf.clear();  // guard:exempt(tests call this before any thread starts)
}

// unlock()/lock() toggling: the access between the two is a violation, the
// one after the re-lock is not.
void Channel::toggle_relock() {
  vdbg::MutexLock lk(mu);
  buf += "a";
  lk.unlock();
  buf += "b";
  lk.lock();
  buf += "c";
}

// Seeded violation: a waiver must carry a reason. The access itself stays
// waived; only the empty-reason diagnostic fires.
void Channel::empty_reason() {
  closed = true;  // guard:exempt()
}

// Stale waiver: nothing in this function is unguarded, so the exemption
// below matched no access and must be deleted or re-justified.
// guard:exempt(left over from an older revision)
std::size_t Channel::stale_waiver_fn() {
  vdbg::MutexLock lk(mu);
  return buf.size();
}

}  // namespace vdbg::fleet

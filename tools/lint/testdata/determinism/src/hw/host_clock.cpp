// det:host-boundary(fixture: explicit bridge between host time and the
// simulated clock; restored runs never take this path)
#include <chrono>

#include "hw/host_clock.h"

namespace fix {

u64 HostClock::wall_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fix

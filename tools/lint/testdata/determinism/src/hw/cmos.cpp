// Fixture: a file-level waiver that outlived the host-time code it once
// covered — nothing nondeterministic is left, so the waiver is stale.
// det:host-boundary(whole file used to read the host RTC)
#include "hw/cmos.h"

namespace fix {

u32 Cmos::century() { return 20; }

}  // namespace fix

// Fixture: nondeterminism leaks in a replay-deterministic layer.
#include <chrono>
#include <ctime>

#include "hw/rtc.h"

namespace fix {

u64 Rtc::host_now() {
  return static_cast<u64>(time(nullptr));
}

u32 Rtc::jitter() {
  return std::rand() & 0xffu;
}

u32 Rtc::seed() {
  std::mt19937 gen(42);
  return gen();
}

u64 Rtc::calibrate() {
  return time(nullptr);  // det:host-boundary(one-shot calibration, test only)
}

u64 Rtc::uptime() {
  // The host clock read this waiver once excused was replaced by the
  // simulated clock; the leftover annotation must be flagged as stale.
  return 42;  // det:host-boundary(leftover waiver, nothing to excuse)
}

}  // namespace fix

// Fixture: a live file-level waiver — the whole file is a sanctioned host
// boundary, so its banned sources are excused and the waiver is used.
// det:host-boundary(this file is the host-time boundary)
#include <chrono>

#include "hw/hostclock.h"

namespace fix {

u64 HostClock::now_us() {
  return gettimeofday(nullptr, nullptr);
}

}  // namespace fix

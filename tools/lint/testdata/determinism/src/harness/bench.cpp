// Fixture: the harness layer may use host time freely.
#include <chrono>

#include "hw/rtc.h"

namespace fix {

u64 bench_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fix

// Fixture: the sanctioned deterministic PRNG is allowlisted by path even
// though it names engines the checker bans everywhere else.
#pragma once

#include <random>

namespace fix {

class Rng {
 public:
  explicit Rng(u64 seed) : gen_(seed) {}
  u32 next() { return static_cast<u32>(gen_()); }

 private:
  std::mt19937_64 gen_;
};

}  // namespace fix

// Miniature fleet engine exercising the thread-role checker: exclusive
// role tags on functions and fields, an untagged helper the BFS walks
// through, sanctioned crossings (atomic field, handoff function) and four
// seeded violations.
#include <atomic>
#include <string>

namespace vdbg::fleet {

class Engine {
 public:
  void worker_body();
  void worker_arm();
  void monitor_body();
  void server_poll();
  void helper();
  void spawn_all();
  void bad_handoff();

 private:
  int ticks_ = 0;  // thread:monitor(watchdog bookkeeping)
  int limit_ = 0;  // thread:init-only(ctor-written, frozen before run)
  std::atomic<int> shared_{0};
};

// thread:worker(slice loop body)
void Engine::worker_body() {
  shared_.fetch_add(1);  // sanctioned: atomic crossing
  int snapshot = limit_;  // sanctioned: init-only fields flag writes only
  helper();
  (void)snapshot;
}

void Engine::helper() {
  ticks_ += 1;    // violation: worker root touches a monitor field
  limit_ = 9;     // violation: worker root writes an init-only field
  server_poll();  // violation: worker reaches server without a handoff
}

// thread:worker(arming path; the handoff call below is the sanctioned exit)
void Engine::worker_arm() {
  spawn_all();  // fine: handoff functions end the traversal
}

// thread:monitor(watchdog body; same-role field touch is fine)
void Engine::monitor_body() {
  ticks_ += 1;
}

// thread:server(poll loop body)
void Engine::server_poll() {
  shared_.load();
}

// thread:handoff(spawns the threads; the joins order their writes)
void Engine::spawn_all() {
  worker_body();
  monitor_body();
  server_poll();
}

// thread:handoff()
void Engine::bad_handoff() {}

}  // namespace vdbg::fleet

// Stats-mode fixture: one real finding hidden by a suppression entry, one
// stale suppression entry that --stats converts into a finding of its own.
#include <string>

namespace vdbg::fleet {

class StatsBox {
 public:
  void unlocked_touch();

 private:
  mutable vdbg::Mutex mu;
  std::string inbox VDBG_GUARDED_BY(mu);
};

// The unguarded access below is suppressed by suppressions.txt, so the only
// diagnostic left is the stale entry next to it in that file.
void StatsBox::unlocked_touch() {
  inbox.clear();
}

}  // namespace vdbg::fleet

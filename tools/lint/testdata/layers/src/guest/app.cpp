// Fixture: guest code must not see the monitor that hosts it.
#include "guest/app.h"
#include "hw/board.h"
#include "vmm/lvmm.h"

namespace fix {
int app_main() { return 0; }
}  // namespace fix

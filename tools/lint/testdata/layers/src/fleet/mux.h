// Fixture: fleet sits below harness and must not include it; reaching
// down into debug is fine.
#pragma once

#include "debug/probe.h"
#include "harness/opts.h"

namespace fix {
struct Mux {};
}  // namespace fix

// Fixture: cpu reaching up into hw inverts the layer DAG.
#pragma once

#include "common/types.h"
#include "hw/board.h"

namespace fix {
struct Core {};
}  // namespace fix

// Fixture: debug sits below harness and must not include it.
#pragma once

#include "harness/opts.h"
#include "vmm/lvmm.h"

namespace fix {
struct Probe {};
}  // namespace fix

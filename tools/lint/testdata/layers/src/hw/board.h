// Fixture: hw may include cpu and common (edges below it in the DAG).
#pragma once

#include "common/types.h"
#include "cpu/core.h"

namespace fix {
struct Board {};
}  // namespace fix

// Fixture: the bottom layer depends on nothing but itself.
#pragma once

#include <cstdint>

namespace fix {
using u32 = std::uint32_t;
}  // namespace fix

// Lexer edge cases: annotation-shaped text inside raw strings must be
// inert, a backslash-continued line comment must swallow the next source
// line, and a block comment carrying a waiver is a real (here: stale)
// waiver.
#include <string>

namespace vdbg::fleet {

class EdgeBox {
 public:
  void locked_write();
  std::string docs();
  void spliced();

 private:
  mutable vdbg::Mutex mu;
  std::string data VDBG_GUARDED_BY(mu);
};

// Raw string: everything inside is data, not annotations. Neither the
// waiver-shaped text nor the guard macro text may register.
std::string EdgeBox::docs() {
  return R"(example annotations:
    // guard:exempt(not a waiver, just documentation text)
    int x VDBG_GUARDED_BY(mu);
  )";
}

// A backslash at the end of a line comment splices the next line into the
// comment, so the unguarded-looking access below never becomes code: \
  data += "swallowed by the comment splice";
void EdgeBox::locked_write() {
  vdbg::MutexLock lk(mu);
  data += "ok";
}

/* Block comments are comments: guard:exempt(block-comment waiver) here is
   parsed — and, matching no unguarded access, reported as stale. */
void EdgeBox::spliced() {
  vdbg::MutexLock lk(mu);
  data.clear();
}

}  // namespace vdbg::fleet

// CRLF exercise: every line of this file ends in \r\n. Annotations and
// diagnostics must be immune to the carriage returns.
#include <string>

namespace vdbg::fleet {

class CrlfBox {
 public:
  void ok_write();
  std::string bad_read();

 private:
  mutable vdbg::Mutex mu;
  std::string payload;  // guard:by(mu)
};

void CrlfBox::ok_write() {
  vdbg::MutexLock lk(mu);
  payload += "x";
}

// Seeded violation: unguarded read, on a CRLF line.
std::string CrlfBox::bad_read() {
  return payload;
}

}  // namespace vdbg::fleet

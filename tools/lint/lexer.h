// Lightweight C++ tokenizer for vdbg_lint.
//
// Not a compiler front end: it splits a translation unit into identifiers,
// numbers, literals and punctuation, with per-token line numbers, and keeps
// comments and #include directives in side tables. That is exactly enough
// for the repo-invariant checkers (snapshot completeness, determinism,
// charge discipline, layer DAG) over this codebase's consistent style —
// and it keeps the tool dependency-free (no libclang).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace vlint {

enum class TokKind { kIdent, kNumber, kString, kPunct };

struct Tok {
  TokKind kind;
  std::string text;
  int line;
};

struct Include {
  int line;
  std::string path;  // as written, e.g. "common/types.h" or "chrono"
  bool angled;
};

struct LexedFile {
  std::string path;   // root-relative, forward slashes
  std::string layer;  // second path component under src/ ("" otherwise)
  std::vector<Tok> toks;
  std::vector<Include> includes;
  // line -> concatenated comment text on that line (block comments are
  // attached to every line they span, so annotation lookup stays by-line).
  std::map<int, std::string> comments;
};

/// Tokenizes `text`. Preprocessor lines are excluded from `toks`
/// (directives are not C++ statements); #include targets land in
/// `includes`. `::` and `->` are kept as single punctuation tokens.
LexedFile lex_file(const std::string& path, const std::string& text);

}  // namespace vlint

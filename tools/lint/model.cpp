#include "model.h"

namespace vlint {

namespace {

bool is_ident(const Tok& t, const char* s) {
  return t.kind == TokKind::kIdent && t.text == s;
}

bool member_like(const std::string& s) {
  return s.size() > 1 && s.back() == '_';
}

/// Scans the paren group opening at toks[open] ("(") for an identifier.
bool paren_group_contains(const std::vector<Tok>& t, int open,
                          const char* ident) {
  int depth = 0;
  for (int k = open; k < static_cast<int>(t.size()); ++k) {
    if (t[k].text == "(") ++depth;
    if (t[k].text == ")" && --depth == 0) return false;
    if (t[k].kind == TokKind::kIdent && t[k].text == ident) return true;
  }
  return false;
}

int match_paren(const std::vector<Tok>& t, int open) {
  int depth = 0;
  for (int k = open; k < static_cast<int>(t.size()); ++k) {
    if (t[k].text == "(") ++depth;
    if (t[k].text == ")" && --depth == 0) return k + 1;
  }
  return static_cast<int>(t.size());
}

/// Parses the class body [begin,end) for data members and inline
/// save/restore definitions. `begin` indexes the opening '{'.
void scan_class_body(const LexedFile& f, int begin, int end, ClassInfo& ci) {
  const auto& t = f.toks;
  int depth = 0;  // relative to the class body
  int paren = 0;
  bool in_init = false;  // between a member's '=' and the closing ';'
  for (int k = begin + 1; k < end - 1; ++k) {
    const std::string& s = t[k].text;
    if (s == "{") {
      ++depth;
      continue;
    }
    if (s == "}") {
      --depth;
      continue;
    }
    if (s == "(") ++paren;
    if (s == ")") --paren;
    if (depth != 0 || paren != 0) continue;

    if (s == ";") {
      in_init = false;
      continue;
    }
    if (s == "=") {
      in_init = true;
      continue;
    }

    // Inline save/restore definition or declaration.
    if (t[k].kind == TokKind::kIdent && (s == "save" || s == "restore") &&
        k + 1 < end && t[k + 1].text == "(") {
      const char* marker = s == "save" ? "SnapshotWriter" : "SnapshotReader";
      if (!paren_group_contains(t, k + 1, marker)) continue;
      (s == "save" ? ci.save_declared : ci.restore_declared) = true;
      int p = match_paren(t, k + 1);
      while (p < end && (is_ident(t[p], "const") || is_ident(t[p], "noexcept") ||
                         is_ident(t[p], "override") || is_ident(t[p], "final"))) {
        ++p;
      }
      if (p < end && t[p].text == "{") {
        const int close = match_brace(t, p);
        if (s == "save") {
          ci.save_body_begin = p;
          ci.save_body_end = close;
        } else {
          ci.restore_body_begin = p;
          ci.restore_body_end = close;
        }
        k = close - 1;  // skip the body
      } else if (p < end && t[p].text == ";") {
        k = p;
      }
      continue;
    }

    // Data member declarator: trailing-underscore identifier followed by
    // ';', '=', '{', ',' or '[' (the repo's member naming convention).
    if (!in_init && t[k].kind == TokKind::kIdent && member_like(s) &&
        k + 1 < end &&
        (t[k + 1].text == ";" || t[k + 1].text == "=" ||
         t[k + 1].text == "{" || t[k + 1].text == "," ||
         t[k + 1].text == "[")) {
      if (k > begin && t[k - 1].text == "::") continue;  // qualified name
      Member m;
      m.name = s;
      m.line = t[k].line;
      m.is_reference = k > begin && t[k - 1].text == "&";
      m.skip_reason = find_annotation(f, m.line, "snap:skip");
      m.reorder_reason = find_annotation(f, m.line, "snap:reorder");
      ci.members.push_back(std::move(m));
    }
  }
}

}  // namespace

int match_brace(const std::vector<Tok>& toks, int open) {
  int depth = 0;
  for (int k = open; k < static_cast<int>(toks.size()); ++k) {
    if (toks[k].text == "{") ++depth;
    if (toks[k].text == "}" && --depth == 0) return k + 1;
  }
  return static_cast<int>(toks.size());
}

std::optional<Annotation> find_annotation_at(const LexedFile& file, int line,
                                             const std::string& key) {
  const auto scan = [&](int l) -> std::optional<Annotation> {
    const auto it = file.comments.find(l);
    if (it == file.comments.end()) return std::nullopt;
    const std::string& c = it->second;
    const auto pos = c.find(key + "(");
    if (pos == std::string::npos) return std::nullopt;
    const auto open = pos + key.size();
    const auto close = c.find(')', open);
    if (close == std::string::npos) return std::nullopt;
    return Annotation{c.substr(open + 1, close - open - 1), l};
  };
  const auto line_has_token = [&](int l) {
    for (const Tok& t : file.toks) {
      if (t.line == l) return true;
    }
    return false;
  };
  // The annotation may sit on the annotated line itself or anywhere in the
  // contiguous comment block directly above it (a code or blank line ends
  // the block).
  if (auto r = scan(line)) return r;
  for (int l = line - 1; l > 0; --l) {
    if (line_has_token(l)) break;
    if (file.comments.find(l) == file.comments.end()) break;
    if (auto r = scan(l)) return r;
  }
  return std::nullopt;
}

std::optional<std::string> find_annotation(const LexedFile& file, int line,
                                           const std::string& key) {
  if (auto r = find_annotation_at(file, line, key)) return r->value;
  return std::nullopt;
}

std::vector<ClassInfo> extract_classes(const LexedFile& f) {
  const auto& t = f.toks;
  std::vector<ClassInfo> out;
  for (int i = 0; i + 1 < static_cast<int>(t.size()); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].text != "class" && t[i].text != "struct") continue;
    if (i > 0 && (is_ident(t[i - 1], "enum") || is_ident(t[i - 1], "friend") ||
                  t[i - 1].text == "<" || t[i - 1].text == ",")) {
      continue;  // enum class / friend decl / template parameter
    }
    // An attribute macro between the keyword and the name
    // (`class VDBG_CAPABILITY("mutex") Mutex {`) shifts the name token.
    int name_at = i + 1;
    if (t[name_at].kind == TokKind::kIdent &&
        name_at + 1 < static_cast<int>(t.size()) &&
        t[name_at + 1].text == "(") {
      const int q = match_paren(t, name_at + 1);
      if (q >= static_cast<int>(t.size()) || t[q].kind != TokKind::kIdent) {
        continue;
      }
      name_at = q;
    }
    if (t[name_at].kind != TokKind::kIdent) continue;
    // Find the body '{', skipping "final" and the base clause; a ';' or
    // other structural token first means it was only a declaration.
    int j = name_at + 1;
    int angle = 0;
    bool has_body = false;
    for (; j < static_cast<int>(t.size()); ++j) {
      const std::string& s = t[j].text;
      if (s == "<") ++angle;
      if (s == ">") --angle;
      if (angle > 0) continue;
      if (s == "{") {
        has_body = true;
        break;
      }
      if (s == ";" || s == "(" || s == ")" || s == "=" || s == "}") break;
    }
    if (!has_body) continue;
    ClassInfo ci;
    ci.name = t[name_at].text;
    ci.file = &f;
    ci.line = t[i].line;
    ci.body_begin = j;
    ci.body_end = match_brace(t, j);
    scan_class_body(f, ci.body_begin, ci.body_end, ci);
    out.push_back(std::move(ci));
    // Do not skip the body: nested classes are extracted as their own
    // entries by the continuing scan.
  }
  return out;
}

std::vector<FuncDef> extract_funcs(const LexedFile& f) {
  const auto& t = f.toks;
  const int n = static_cast<int>(t.size());
  std::vector<FuncDef> out;
  for (int i = 0; i + 3 < n; ++i) {
    if (t[i].kind != TokKind::kIdent || t[i + 1].text != "::") continue;
    int name_at = i + 2;
    std::string name;
    if (t[name_at].text == "~" && name_at + 1 < n) {
      name = "~" + t[name_at + 1].text;
      ++name_at;
    } else if (t[name_at].kind == TokKind::kIdent) {
      name = t[name_at].text;
    } else {
      continue;
    }
    if (name == "operator" || name_at + 1 >= n || t[name_at + 1].text != "(") {
      continue;
    }

    // Walk from the parameter list's ')' to the body '{'; only tokens that
    // can legally appear there (cv-qualifiers, init lists, trailing return
    // types) are allowed, so expressions like `if (Foo::bar(x)) {` never
    // masquerade as definitions.
    int p = match_paren(t, name_at + 1);
    bool in_init_list = false;
    int body = -1;
    for (int k = p; k < n; ++k) {
      const std::string& s = t[k].text;
      if (s == ";" || s == "=") break;  // declaration / deleted / defaulted
      if (s == "{") {
        // In a ctor init list, `member{...}` braces follow an identifier or
        // a template '>'; the body brace follows ')' or '}' or ':' -- never
        // an identifier.
        if (in_init_list && k > 0 &&
            (t[k - 1].kind == TokKind::kIdent || t[k - 1].text == ">")) {
          k = match_brace(t, k) - 1;
          continue;
        }
        body = k;
        break;
      }
      if (s == "(") {
        k = match_paren(t, k) - 1;
        continue;
      }
      if (s == ":") {
        in_init_list = true;
        continue;
      }
      if (t[k].kind == TokKind::kIdent || s == "::" || s == "&" || s == "*" ||
          s == "<" || s == ">" || s == "," || s == "->") {
        continue;
      }
      break;  // anything else: not a definition
    }
    if (body < 0) continue;

    FuncDef fd;
    fd.cls = t[i].text;
    fd.name = std::move(name);
    fd.file = &f;
    fd.line = t[i].line;
    fd.returns_void = i > 0 && is_ident(t[i - 1], "void");
    fd.body_begin = body;
    fd.body_end = match_brace(t, body);
    const int resume = fd.body_end;
    out.push_back(std::move(fd));
    i = resume - 1;  // never scan inside bodies (calls are not definitions)
  }
  return out;
}

namespace {

bool callable_keyword(const std::string& s) {
  static const char* kKeywords[] = {
      "if",     "else",    "for",      "while",         "do",
      "switch", "return",  "sizeof",   "catch",         "new",
      "delete", "throw",   "decltype", "static_assert", "alignof",
      "case",   "goto",    "noexcept", "co_await",      "co_return",
      "co_yield"};
  for (const char* k : kKeywords) {
    if (s == k) return true;
  }
  return false;
}

/// From one past the parameter list's ')' to the body '{', tolerating only
/// tokens that can legally sit between them (cv-qualifiers, attribute
/// macros with their paren groups, ctor init lists, trailing return
/// types). Returns the '{' token index, or -1 for declarations and
/// anything else.
int body_after_params(const std::vector<Tok>& t, int p, int end) {
  bool in_init_list = false;
  for (int k = p; k < end; ++k) {
    const std::string& s = t[k].text;
    if (s == ";" || s == "=") return -1;  // declaration / deleted / defaulted
    if (s == "{") {
      // In a ctor init list, `member{...}` braces follow an identifier or
      // a template '>'; the body brace never does.
      if (in_init_list && k > 0 &&
          (t[k - 1].kind == TokKind::kIdent || t[k - 1].text == ">")) {
        k = match_brace(t, k) - 1;
        continue;
      }
      return k;
    }
    if (s == "(") {
      k = match_paren(t, k) - 1;
      continue;
    }
    if (s == ":") {
      in_init_list = true;
      continue;
    }
    if (t[k].kind == TokKind::kIdent || s == "::" || s == "&" || s == "*" ||
        s == "<" || s == ">" || s == "," || s == "->") {
      continue;
    }
    return -1;
  }
  return -1;
}

/// Recursive function-body scan over one brace scope. Descends into class
/// bodies (with their name as `cls`), skips enum bodies, and records every
/// `[~]name(...) ... {` definition it can prove is one, then jumps past
/// its body (function bodies are never scanned for more definitions).
void scan_funcs_scope(const LexedFile& f, int begin, int end,
                      const std::string& cls, std::vector<FuncDef>& out) {
  const auto& t = f.toks;
  for (int k = begin; k < end; ++k) {
    const std::string& s = t[k].text;
    if (t[k].kind == TokKind::kIdent && (s == "class" || s == "struct") &&
        !(k > 0 && (is_ident(t[k - 1], "enum") || is_ident(t[k - 1], "friend") ||
                    t[k - 1].text == "<" || t[k - 1].text == ","))) {
      int name_at = k + 1;
      if (name_at < end && t[name_at].kind == TokKind::kIdent &&
          name_at + 1 < end && t[name_at + 1].text == "(") {
        const int q = match_paren(t, name_at + 1);  // attribute macro
        name_at = q < end && t[q].kind == TokKind::kIdent ? q : end;
      }
      if (name_at >= end || t[name_at].kind != TokKind::kIdent) continue;
      int j = name_at + 1;
      int angle = 0;
      int body = -1;
      for (; j < end; ++j) {
        const std::string& u = t[j].text;
        if (u == "<") ++angle;
        if (u == ">") --angle;
        if (angle > 0) continue;
        if (u == "{") {
          body = j;
          break;
        }
        if (u == ";" || u == "(" || u == ")" || u == "=" || u == "}") break;
      }
      if (body >= 0) {
        const int close = match_brace(t, body);
        scan_funcs_scope(f, body + 1, close - 1, t[name_at].text, out);
        k = close - 1;
      }
      continue;
    }
    if (t[k].kind == TokKind::kIdent && s == "enum") {
      int j = k + 1;
      while (j < end && t[j].text != "{" && t[j].text != ";") ++j;
      if (j < end && t[j].text == "{") j = match_brace(t, j) - 1;
      k = j;
      continue;
    }

    bool dtor = false;
    int name_at = k;
    if (s == "~" && k + 1 < end && t[k + 1].kind == TokKind::kIdent) {
      dtor = true;
      name_at = k + 1;
    } else if (t[k].kind != TokKind::kIdent) {
      continue;
    }
    const std::string& name = t[name_at].text;
    if (callable_keyword(name) || name == "operator" || name == "namespace") {
      continue;
    }
    if (name_at + 1 >= end || t[name_at + 1].text != "(") continue;
    const int p = match_paren(t, name_at + 1);
    const int body = body_after_params(t, p, end);
    if (body < 0) {
      k = p - 1;  // declaration or initializer: skip the paren group whole
      continue;
    }

    FuncDef fd;
    fd.cls = cls;
    if (k >= 2 && t[k - 1].text == "::" && t[k - 2].kind == TokKind::kIdent) {
      fd.cls = t[k - 2].text;  // out-of-line Cls::name definition
    }
    fd.name = (dtor ? "~" : "") + name;
    fd.file = &f;
    fd.line = t[name_at].line;
    fd.returns_void = k > 0 && is_ident(t[k - 1], "void");
    fd.body_begin = body;
    fd.body_end = match_brace(t, body);
    const int resume = fd.body_end;
    out.push_back(std::move(fd));
    k = resume - 1;
  }
}

}  // namespace

std::vector<FuncDef> extract_all_funcs(const LexedFile& f) {
  std::vector<FuncDef> out;
  scan_funcs_scope(f, 0, static_cast<int>(f.toks.size()), "", out);
  return out;
}

}  // namespace vlint

// The two concurrency checkers: (6) lock-guard — annotation-driven lock
// discipline — and (7) thread-role — call-graph thread-role consistency for
// the fleet layer. Both read the same annotations clang's -Wthread-safety
// consumes through src/common/thread_annotations.h, plus the comment forms
// documented in model.h; DESIGN.md §8 "Concurrency checking" has the model.
#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "checks.h"
#include "lexer.h"
#include "model.h"

namespace vlint {

namespace {

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",     "else",   "for",     "while",    "do",       "switch",
      "return", "sizeof", "catch",   "new",      "delete",   "throw",
      "case",   "goto",   "static_assert",       "decltype", "alignof",
      "noexcept"};
  return kw.count(s) != 0;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!trim(cur).empty()) out.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!trim(cur).empty()) out.push_back(trim(cur));
  return out;
}

// One past the matching '>' for toks[open] == "<"; `open` itself if the run
// to the matching bracket leaves the statement (malformed / not a template
// argument list after all).
int match_angle(const std::vector<Tok>& t, int open) {
  int depth = 0;
  for (int k = open; k < static_cast<int>(t.size()); ++k) {
    const std::string& s = t[k].text;
    if (s == "<") ++depth;
    else if (s == ">") {
      if (--depth == 0) return k + 1;
    } else if (s == ";" || s == "{" || s == "}") {
      return open;
    }
  }
  return open;
}

// ---------------------------------------------------------------------------
// Shared annotation/field model
// ---------------------------------------------------------------------------

struct FieldFacts {
  std::string mutex;  // guard:by / VDBG_GUARDED_BY target, "" if unguarded
  std::string role;   // worker|monitor|server|init-only, "" if untagged
  bool atomic = false;
  bool is_thread_local = false;
  int line = 0;
  const LexedFile* file = nullptr;
};

struct ConcurrencyModel {
  // "Cls::field" -> facts, for every field carrying any concurrency fact.
  std::map<std::string, FieldFacts> fields;
  // Namespace-scope guarded variables (macro form only): per file path,
  // var name -> mutex.
  std::map<std::string, std::map<std::string, std::string>> file_guards;
  // Names of mutex-typed members plus every annotation's mutex target —
  // what a manual `<name>.lock()` is allowed to toggle.
  std::set<std::string> mutex_names;
  // Classes owning at least one guard:by field (typed-base resolution).
  std::set<std::string> guarded_classes;
  // Every class name seen anywhere (constructor-call suppression and
  // typed-base resolution for the role checker).
  std::set<std::string> class_names;
};

const char* kExclusiveRoles[] = {"worker", "monitor", "server", "init-only"};

// Scans one class body for field declarations carrying guard:/thread:
// annotations (comment or VDBG_ macro form) and for sync-primitive members.
void scan_class_fields(const LexedFile& f, const ClassInfo& ci,
                       ConcurrencyModel& m) {
  if (ci.body_begin < 0 || ci.body_end <= ci.body_begin) return;
  const auto& t = f.toks;
  int depth = 0, paren = 0;
  bool in_init = false;  // between a default-member-init '=' and its ';'
  int decl_start = ci.body_begin + 1;
  for (int k = ci.body_begin + 1; k < ci.body_end - 1; ++k) {
    const Tok& tok = t[k];
    const std::string& s = tok.text;
    if (s == "{") { ++depth; continue; }
    if (s == "}") { if (depth > 0) --depth; if (depth == 0 && paren == 0) { decl_start = k + 1; in_init = false; } continue; }
    if (depth > 0) continue;
    if (s == "(") { ++paren; continue; }
    if (s == ")") { if (paren > 0) --paren; continue; }
    if (paren > 0) continue;
    if (s == ";" || s == ":") { decl_start = k + 1; in_init = false; continue; }
    if (s == "=") { in_init = true; continue; }
    if (in_init || tok.kind != TokKind::kIdent) continue;
    // Candidate field: ident followed by a declarator terminator or the
    // guard macro, not preceded by a scope/type keyword or '::'.
    const std::string next = k + 1 < ci.body_end ? t[k + 1].text : "";
    const std::string prev = k > 0 ? t[k - 1].text : "";
    const bool macro_follows = next == "VDBG_GUARDED_BY";
    if (!macro_follows && next != ";" && next != "=" && next != "{" &&
        next != "," && next != "[") {
      continue;
    }
    if (prev == "::" || prev == "struct" || prev == "class" ||
        prev == "enum" || prev == "union" || prev == "namespace") {
      continue;
    }
    // Decl-specifier scan: atomic / thread_local / sync-primitive types.
    bool atomic = false, tls = false, sync = false;
    for (int j = decl_start; j < k; ++j) {
      if (t[j].kind != TokKind::kIdent) continue;
      const std::string& w = t[j].text;
      if (w == "atomic" || w == "atomic_bool" || w == "atomic_int" ||
          w == "atomic_flag") {
        atomic = true;
      } else if (w == "thread_local") {
        tls = true;
      } else if (w == "Mutex" || w == "mutex" || w == "shared_mutex" ||
                 w == "condition_variable" || w == "condition_variable_any" ||
                 w == "thread" || w == "jthread") {
        sync = true;
      }
    }
    if (sync) {
      m.mutex_names.insert(s);
      continue;  // sync primitives are the protection, not the data
    }
    FieldFacts facts;
    facts.atomic = atomic;
    facts.is_thread_local = tls;
    facts.line = tok.line;
    facts.file = &f;
    if (macro_follows && k + 2 < ci.body_end && t[k + 2].text == "(") {
      const int close = [&] {
        int d = 0;
        for (int j = k + 2; j < ci.body_end; ++j) {
          if (t[j].text == "(") ++d;
          else if (t[j].text == ")" && --d == 0) return j;
        }
        return ci.body_end - 1;
      }();
      for (int j = k + 3; j < close; ++j) {
        if (t[j].kind == TokKind::kIdent) facts.mutex = t[j].text;
      }
    }
    if (facts.mutex.empty()) {
      if (auto g = find_annotation(f, tok.line, "guard:by")) facts.mutex = trim(*g);
    }
    for (const char* r : kExclusiveRoles) {
      if (find_annotation(f, tok.line, std::string("thread:") + r)) {
        facts.role = r;
        break;
      }
    }
    if (facts.mutex.empty() && facts.role.empty() && !atomic && !tls) continue;
    if (!facts.mutex.empty()) {
      m.mutex_names.insert(facts.mutex);
      m.guarded_classes.insert(ci.name);
    }
    m.fields[ci.name + "::" + s] = facts;
  }
}

ConcurrencyModel build_model(const Repo& repo) {
  ConcurrencyModel m;
  for (const auto& ci : repo.classes) m.class_names.insert(ci.name);
  for (const auto& ci : repo.classes) {
    if (ci.file) scan_class_fields(*ci.file, ci, m);
  }
  // Namespace-scope guarded variables, macro form: `Type name
  // VDBG_GUARDED_BY(mu);` outside every class body.
  for (const auto& fp : repo.files) {
    const LexedFile& f = *fp;
    std::vector<std::pair<int, int>> class_ranges;
    for (const auto& ci : repo.classes) {
      if (ci.file == &f && ci.body_begin >= 0) {
        class_ranges.emplace_back(ci.body_begin, ci.body_end);
      }
    }
    const auto& t = f.toks;
    for (int k = 1; k + 1 < static_cast<int>(t.size()); ++k) {
      if (t[k].text != "VDBG_GUARDED_BY" || t[k + 1].text != "(") continue;
      bool in_class = false;
      for (const auto& r : class_ranges) {
        if (k > r.first && k < r.second) { in_class = true; break; }
      }
      if (in_class || t[k - 1].kind != TokKind::kIdent) continue;
      std::string mutex;
      for (int j = k + 2; j < static_cast<int>(t.size()) && t[j].text != ")"; ++j) {
        if (t[j].kind == TokKind::kIdent) mutex = t[j].text;
      }
      if (mutex.empty()) continue;
      m.file_guards[f.path][t[k - 1].text] = mutex;
      m.mutex_names.insert(mutex);
    }
  }
  return m;
}

// Start of the signature token range for a function definition: walk back
// from the body '{' while tokens stay on/after the annotated line.
int signature_start(const LexedFile& f, const FuncDef& fd) {
  int k = fd.body_begin - 1;
  while (k >= 0 && f.toks[k].line >= fd.line) --k;
  return k + 1;
}

// `T [&*]* name <terminator>` declarations for the given set of class
// names, over [from, to) — parameters and locals both match.
void collect_var_types(const LexedFile& f, int from, int to,
                       const std::set<std::string>& classes,
                       std::map<std::string, std::string>& out) {
  const auto& t = f.toks;
  for (int k = from; k < to - 1; ++k) {
    if (t[k].kind != TokKind::kIdent || !classes.count(t[k].text)) continue;
    int j = k + 1;
    while (j < to && (t[j].text == "&" || t[j].text == "*")) ++j;
    if (j >= to - 1 || t[j].kind != TokKind::kIdent || is_keyword(t[j].text)) continue;
    const std::string& after = t[j + 1].text;
    if (after == "=" || after == "(" || after == "{" || after == ";" ||
        after == "," || after == ")") {
      out[t[j].text] = t[k].text;
    }
  }
}

// True when toks[k] begins a lambda introducer: '[' not preceded by an
// expression (same heuristic charge-path uses).
bool lambda_at(const std::vector<Tok>& t, int k, int begin) {
  if (t[k].text != "[") return false;
  if (k == begin) return true;
  const Tok& p = t[k - 1];
  if (p.kind == TokKind::kIdent && !is_keyword(p.text)) return false;
  return p.text != "]" && p.text != ")";
}

// Given a lambda introducer at `k`, returns the token index of the body '{'
// (or -1 when none is found nearby — not a lambda after all).
int lambda_body(const std::vector<Tok>& t, int k, int end) {
  int d = 0, j = k;
  for (; j < end; ++j) {
    if (t[j].text == "[") ++d;
    else if (t[j].text == "]" && --d == 0) break;
  }
  if (j >= end) return -1;
  ++j;
  if (j < end && t[j].text == "(") {  // parameter list
    int pd = 0;
    for (; j < end; ++j) {
      if (t[j].text == "(") ++pd;
      else if (t[j].text == ")" && --pd == 0) { ++j; break; }
    }
  }
  for (int hops = 0; j < end && hops < 16; ++j, ++hops) {
    if (t[j].text == "{") return j;
    if (t[j].text == ";" || t[j].text == ")") return -1;
  }
  return -1;
}

// ---------------------------------------------------------------------------
// (6) lock-guard
// ---------------------------------------------------------------------------

struct LockCtx {
  const LexedFile* f = nullptr;
  const FuncDef* fd = nullptr;
  const ConcurrencyModel* m = nullptr;
  const std::map<std::string, std::string>* fguards = nullptr;  // this file
  std::map<std::string, std::string> vartypes;
  std::optional<Annotation> fn_exempt;
  bool fn_exempt_used = false;
  std::set<int>* used_waivers = nullptr;   // comment lines whose exempt fired
  std::set<std::string>* emitted = nullptr;
  std::vector<Diag>* out = nullptr;
};

const std::set<std::string> kLockTypes = {"lock_guard", "unique_lock",
                                          "scoped_lock", "MutexLock"};

void report_unguarded(LockCtx& cx, const std::string& key,
                      const std::string& mutex, int line) {
  // Waivers: on the access line itself, else on the whole function.
  if (auto w = find_annotation_at(*cx.f, line, "guard:exempt")) {
    if (trim(w->value).empty()) {
      const std::string dk = cx.f->path + ":" + std::to_string(w->line) + ":!";
      if (cx.emitted->insert(dk).second) {
        cx.out->push_back(Diag{"lock-guard", cx.f->path, w->line,
                               "guard:exempt requires a reason"});
      }
    }
    cx.used_waivers->insert(w->line);
    return;
  }
  if (cx.fn_exempt) {
    if (trim(cx.fn_exempt->value).empty()) {
      const std::string dk =
          cx.f->path + ":" + std::to_string(cx.fn_exempt->line) + ":!";
      if (cx.emitted->insert(dk).second) {
        cx.out->push_back(Diag{"lock-guard", cx.f->path, cx.fn_exempt->line,
                               "guard:exempt requires a reason"});
      }
    }
    cx.used_waivers->insert(cx.fn_exempt->line);
    cx.fn_exempt_used = true;
    return;
  }
  const std::string dk = cx.f->path + ":" + std::to_string(line) + ":" + key;
  if (!cx.emitted->insert(dk).second) return;
  cx.out->push_back(
      Diag{"lock-guard", cx.f->path, line,
           "'" + key + "' is guarded by '" + mutex + "' but '" + mutex +
               "' is not held here; take a vdbg::MutexLock (or declare "
               "guard:held(" + mutex + ") / guard:exempt(<reason>))"});
}

// Walks [begin, end) with the given held-set seed. Lambda bodies recurse
// with an empty held set (they typically run on another thread later).
void walk_lock(LockCtx& cx, int begin, int end, std::set<std::string> seed) {
  const auto& t = cx.f->toks;
  std::vector<std::set<std::string>> held;
  held.push_back(std::move(seed));
  std::map<std::string, std::vector<std::string>> lockvars;
  for (int k = begin; k < end; ++k) {
    const std::string& s = t[k].text;
    if (s == "{") { held.push_back(held.back()); continue; }
    if (s == "}") { if (held.size() > 1) held.pop_back(); continue; }
    if (lambda_at(t, k, begin)) {
      const int body = lambda_body(t, k, end);
      if (body >= 0) {
        const int close = match_brace(t, body);
        walk_lock(cx, body + 1, close - 1, {});
        k = close - 1;
        continue;
      }
    }
    if (t[k].kind != TokKind::kIdent) continue;

    // RAII lock declaration: Type[<...>] var(args...).
    if (kLockTypes.count(s)) {
      int j = k + 1;
      if (j < end && t[j].text == "<") j = match_angle(t, j);
      if (j + 1 < end && t[j].kind == TokKind::kIdent &&
          t[j + 1].text == "(") {
        const std::string var = t[j].text;
        int d = 0, argb = j + 2;
        std::vector<std::string> mutexes;
        bool deferred = false;
        int p = j + 1;
        for (; p < end; ++p) {
          if (t[p].text == "(") { ++d; continue; }
          if (t[p].text == ")" && --d == 0) break;
          if (d == 1 && t[p].text == ",") {
            std::string last;
            for (int q = argb; q < p; ++q) {
              if (t[q].kind == TokKind::kIdent) last = t[q].text;
            }
            if (last == "defer_lock") deferred = true;
            else if (!last.empty()) mutexes.push_back(last);
            argb = p + 1;
          }
        }
        std::string last;
        for (int q = argb; q < p; ++q) {
          if (t[q].kind == TokKind::kIdent) last = t[q].text;
        }
        if (last == "defer_lock") deferred = true;
        else if (!last.empty()) mutexes.push_back(last);
        lockvars[var] = mutexes;
        if (!deferred) {
          for (const auto& mu : mutexes) held.back().insert(mu);
        }
        k = p;
        continue;
      }
    }

    // Manual toggles: lockvar.lock()/unlock() or <mutex>.lock()/unlock().
    if (k + 3 < end && (t[k + 1].text == "." || t[k + 1].text == "->") &&
        (t[k + 2].text == "lock" || t[k + 2].text == "unlock") &&
        t[k + 3].text == "(") {
      const bool acquire = t[k + 2].text == "lock";
      std::vector<std::string> mutexes;
      if (auto it = lockvars.find(s); it != lockvars.end()) {
        mutexes = it->second;
      } else if (cx.m->mutex_names.count(s)) {
        mutexes.push_back(s);
      }
      if (!mutexes.empty()) {
        for (const auto& mu : mutexes) {
          if (acquire) held.back().insert(mu);
          else held.back().erase(mu);
        }
        k += 3;
        continue;
      }
    }

    // Guarded-field access.
    if (s == "this" || is_keyword(s)) continue;
    const std::string prev = k > 0 ? t[k - 1].text : "";
    if (prev == "::") continue;  // qualified name, not a member access
    std::string owner;
    if (prev == "." || prev == "->") {
      if (k < 2) continue;
      const Tok& base = t[k - 2];
      if (base.text == "this") owner = cx.fd->cls;
      else if (base.kind == TokKind::kIdent) {
        auto it = cx.vartypes.find(base.text);
        if (it == cx.vartypes.end()) continue;  // unknown base: skip
        owner = it->second;
      } else {
        continue;
      }
    } else {
      owner = cx.fd->cls;
      // Namespace-scope guarded variables are matched by bare name.
      if (cx.fguards) {
        auto it = cx.fguards->find(s);
        if (it != cx.fguards->end() && !held.back().count(it->second)) {
          report_unguarded(cx, s, it->second, t[k].line);
          continue;
        }
        if (it != cx.fguards->end()) continue;
      }
      if (owner.empty()) continue;
    }
    auto it = cx.m->fields.find(owner + "::" + s);
    if (it == cx.m->fields.end() || it->second.mutex.empty()) continue;
    if (!held.back().count(it->second.mutex)) {
      report_unguarded(cx, owner + "::" + s, it->second.mutex, t[k].line);
    }
  }
}

}  // namespace

void check_lock_guard(const Repo& repo, std::vector<Diag>& out) {
  const ConcurrencyModel m = build_model(repo);
  std::map<const LexedFile*, std::set<int>> used_waivers;
  std::set<std::string> emitted;

  for (const auto& fd : repo.all_funcs) {
    const LexedFile& f = *fd.file;
    LockCtx cx;
    cx.f = &f;
    cx.fd = &fd;
    cx.m = &m;
    auto fit = m.file_guards.find(f.path);
    cx.fguards = fit == m.file_guards.end() ? nullptr : &fit->second;
    cx.fn_exempt = find_annotation_at(f, fd.line, "guard:exempt");
    cx.used_waivers = &used_waivers[&f];
    cx.emitted = &emitted;
    cx.out = &out;

    const int sig = signature_start(f, fd);
    collect_var_types(f, sig, fd.body_end, m.guarded_classes, cx.vartypes);

    // Held-set seed: guard:held(<mutexes>) comment and/or VDBG_REQUIRES in
    // the signature.
    std::set<std::string> seed;
    if (auto h = find_annotation(f, fd.line, "guard:held")) {
      for (const auto& mu : split_commas(*h)) seed.insert(mu);
    }
    for (int k = sig; k < fd.body_begin; ++k) {
      if (f.toks[k].text != "VDBG_REQUIRES" || k + 1 >= fd.body_begin ||
          f.toks[k + 1].text != "(") {
        continue;
      }
      for (int j = k + 2;
           j < fd.body_begin && f.toks[j].text != ")"; ++j) {
        if (f.toks[j].kind == TokKind::kIdent) seed.insert(f.toks[j].text);
      }
    }
    walk_lock(cx, fd.body_begin + 1, fd.body_end - 1, std::move(seed));
  }

  // Stale waivers: a guard:exempt that never fired. Consecutive comment
  // lines carrying the same body (one spliced/block comment attached to
  // every line it spans) count as a single waiver site.
  for (const auto& fp : repo.files) {
    const LexedFile& f = *fp;
    const auto& used = used_waivers[&f];
    int prev_line = -2;
    std::string prev_body;
    int run_start = -1;
    bool run_used = false;
    auto flush = [&](void) {
      if (run_start >= 0 && !run_used) {
        out.push_back(Diag{"lock-guard", f.path, run_start,
                           "stale waiver: guard:exempt matched no unguarded "
                           "access; delete it or re-justify"});
      }
      run_start = -1;
      run_used = false;
    };
    for (const auto& [line, body] : f.comments) {
      const bool has = body.find("guard:exempt(") != std::string::npos;
      const bool contiguous = line == prev_line + 1 && body == prev_body;
      if (has && contiguous && run_start >= 0) {
        run_used = run_used || used.count(line);
      } else {
        flush();
        if (has) {
          run_start = line;
          run_used = used.count(line) != 0;
        }
      }
      prev_line = line;
      prev_body = body;
    }
    flush();
  }
}

// ---------------------------------------------------------------------------
// (7) thread-role
// ---------------------------------------------------------------------------

namespace {

// The checked surface: the fleet layer plus the flight recorder, log and
// metrics files its threads share.
bool role_scope_file(const std::string& path) {
  if (path.rfind("src/fleet/", 0) == 0) return true;
  static const char* kExtra[] = {
      "src/vmm/flight_recorder.h", "src/vmm/flight_recorder.cpp",
      "src/common/log.h",          "src/common/log.cpp",
      "src/common/metrics.h",      "src/common/metrics.cpp"};
  for (const char* p : kExtra) {
    if (path == p) return true;
  }
  return false;
}

struct RoleNode {
  const FuncDef* fd = nullptr;
  std::string role;  // "", worker, monitor, server, init-only, any, handoff
  std::string qual;  // "Cls::name" or "name"
  struct Edge {
    int callee;
    int line;
  };
  std::vector<Edge> edges;
  struct FieldAccess {
    std::string key;  // "Cls::field"
    int line;
    bool write;
  };
  std::vector<FieldAccess> faccesses;
};

std::string node_role(const LexedFile& f, const FuncDef& fd,
                      std::vector<Diag>& out, std::set<std::string>& emitted) {
  static const char* kAll[] = {"worker",    "monitor", "server",
                               "init-only", "any",     "handoff"};
  for (const char* r : kAll) {
    auto a = find_annotation_at(f, fd.line, std::string("thread:") + r);
    if (!a) continue;
    if (std::string(r) == "handoff" && trim(a->value).empty()) {
      const std::string dk = f.path + ":" + std::to_string(a->line) + ":h!";
      if (emitted.insert(dk).second) {
        out.push_back(Diag{"thread-role", f.path, a->line,
                           "thread:handoff requires a reason"});
      }
    }
    return r;
  }
  return "";
}

// True when toks[k] is an assignment-style write to the ident at k
// (=, op=, ++, --). Reads through method calls are not modelled.
bool write_at(const std::vector<Tok>& t, int k, int end) {
  if (k + 1 >= end) return false;
  const std::string& a = t[k + 1].text;
  if (a == "=") return k + 2 >= end || t[k + 2].text != "=";
  if (k + 2 < end &&
      (a == "+" || a == "-" || a == "*" || a == "/" || a == "%" ||
       a == "&" || a == "|" || a == "^")) {
    if (t[k + 2].text == "=") return true;
    if ((a == "+" || a == "-") && t[k + 2].text == a) return true;  // x++/x--
  }
  if (k >= 2 && ((t[k - 1].text == "+" && t[k - 2].text == "+") ||
                 (t[k - 1].text == "-" && t[k - 2].text == "-"))) {
    return true;  // ++x/--x
  }
  return false;
}

}  // namespace

void check_thread_role(const Repo& repo, std::vector<Diag>& out) {
  const ConcurrencyModel m = build_model(repo);
  std::set<std::string> emitted;

  // Nodes: every function body in a scope file.
  std::vector<RoleNode> nodes;
  std::map<std::string, std::vector<int>> by_name;  // name -> node indices
  for (const auto& fd : repo.all_funcs) {
    if (!role_scope_file(fd.file->path)) continue;
    RoleNode n;
    n.fd = &fd;
    n.role = node_role(*fd.file, fd, out, emitted);
    n.qual = fd.cls.empty() ? fd.name : fd.cls + "::" + fd.name;
    by_name[fd.name].push_back(static_cast<int>(nodes.size()));
    nodes.push_back(std::move(n));
  }

  // Role-tagged fields inside the scope only.
  auto field_role = [&](const std::string& key) -> const FieldFacts* {
    auto it = m.fields.find(key);
    if (it == m.fields.end() || it->second.role.empty()) return nullptr;
    if (!it->second.file || !role_scope_file(it->second.file->path)) return nullptr;
    return &it->second;
  };

  // Edges and field accesses (lambda bodies excluded: handing a callable to
  // another thread IS the crossing, and the lambda runs under that thread's
  // role, which the receiving function's annotations cover).
  auto resolve = [&](const std::string& cls,
                     const std::string& name) -> int {
    auto it = by_name.find(name);
    if (it == by_name.end()) return -1;
    int hit = -1;
    for (int idx : it->second) {
      if (nodes[idx].fd->cls == cls) {
        if (hit >= 0) return -1;  // ambiguous
        hit = idx;
      }
    }
    return hit;
  };
  auto resolve_member_fallback = [&](const std::string& name) -> int {
    auto it = by_name.find(name);
    if (it == by_name.end()) return -1;
    int hit = -1;
    for (int idx : it->second) {
      if (!nodes[idx].fd->cls.empty()) {
        if (hit >= 0) return -1;
        hit = idx;
      }
    }
    return hit;
  };
  auto resolve_any = [&](const std::string& name) -> int {
    auto it = by_name.find(name);
    if (it == by_name.end() || it->second.size() != 1) return -1;
    return it->second[0];
  };

  for (auto& n : nodes) {
    const FuncDef& fd = *n.fd;
    const LexedFile& f = *fd.file;
    const auto& t = f.toks;
    std::map<std::string, std::string> vartypes;
    const int sig = signature_start(f, fd);
    collect_var_types(f, sig, fd.body_end, m.class_names, vartypes);

    for (int k = fd.body_begin + 1; k < fd.body_end - 1; ++k) {
      if (lambda_at(t, k, fd.body_begin + 1)) {
        const int body = lambda_body(t, k, fd.body_end - 1);
        if (body >= 0) {
          k = match_brace(t, body) - 1;
          continue;
        }
      }
      if (t[k].kind != TokKind::kIdent || is_keyword(t[k].text) ||
          t[k].text == "this") {
        continue;
      }
      const std::string& s = t[k].text;
      const std::string prev = k > 0 ? t[k - 1].text : "";
      const bool call = k + 1 < fd.body_end && t[k + 1].text == "(";

      if (call && !m.class_names.count(s)) {
        int callee = -1;
        if (prev == "::") {
          const std::string base = k >= 2 ? t[k - 2].text : "";
          callee = resolve(base, s);
          if (callee < 0) callee = resolve("", s);
        } else if (prev == "." || prev == "->") {
          const std::string base = k >= 2 ? t[k - 2].text : "";
          if (base == "this") {
            callee = resolve(fd.cls, s);
          } else if (auto it = vartypes.find(base); it != vartypes.end()) {
            callee = resolve(it->second, s);
          } else {
            callee = resolve_member_fallback(s);
          }
        } else {
          callee = resolve(fd.cls, s);
          if (callee < 0) callee = resolve("", s);
          if (callee < 0) callee = resolve_any(s);
        }
        if (callee >= 0 && nodes[callee].fd != n.fd) {
          n.edges.push_back({callee, t[k].line});
        }
        continue;
      }

      // Field access.
      if (prev == "::") continue;
      std::string owner;
      if (prev == "." || prev == "->") {
        const std::string base = k >= 2 ? t[k - 2].text : "";
        if (base == "this") owner = fd.cls;
        else if (auto it = vartypes.find(base); it != vartypes.end()) owner = it->second;
        else continue;
      } else {
        owner = fd.cls;
      }
      if (owner.empty()) continue;
      const std::string key = owner + "::" + s;
      if (field_role(key)) {
        n.faccesses.push_back({key, t[k].line, write_at(t, k, fd.body_end)});
      }
    }
    std::sort(n.edges.begin(), n.edges.end(),
              [&](const RoleNode::Edge& a, const RoleNode::Edge& b) {
                if (nodes[a.callee].qual != nodes[b.callee].qual)
                  return nodes[a.callee].qual < nodes[b.callee].qual;
                return a.line < b.line;
              });
  }

  // BFS from every tagged root. Untagged callees inherit the root's role;
  // thread:any and thread:handoff callees end the traversal (the former is
  // independently checked, the latter is the sanctioned crossing).
  for (int r = 0; r < static_cast<int>(nodes.size()); ++r) {
    const std::string& rrole = nodes[r].role;
    if (rrole.empty() || rrole == "handoff") continue;

    std::map<int, int> parent;
    std::vector<int> queue{r};
    parent[r] = -1;
    auto path_to = [&](int v) {
      std::vector<int> chain;
      for (int x = v; x >= 0; x = parent[x]) chain.push_back(x);
      std::reverse(chain.begin(), chain.end());
      std::string p;
      for (int x : chain) {
        if (!p.empty()) p += " -> ";
        p += nodes[x].qual;
      }
      return p;
    };
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const int v = queue[qi];
      for (const auto& fa : nodes[v].faccesses) {
        const FieldFacts* ff = field_role(fa.key);
        if (!ff || !ff->mutex.empty() || ff->atomic || ff->is_thread_local) {
          continue;  // guard:by / atomic / thread_local are sanctioned
        }
        bool bad;
        std::string why;
        if (ff->role == "init-only") {
          bad = fa.write && rrole != "init-only";
          why = "init-only fields are writable only before the threads start";
        } else {
          bad = ff->role != rrole;
          why = "only std::atomic and guard:by fields may cross thread roles";
        }
        if (!bad) continue;
        const std::string dk = nodes[r].qual + "|" + fa.key;
        if (!emitted.insert(dk).second) continue;
        out.push_back(Diag{
            "thread-role", nodes[v].fd->file->path, fa.line,
            "thread:" + rrole + " function '" + nodes[r].qual +
                (fa.write && ff->role == "init-only" ? "' writes thread:"
                                                     : "' touches thread:") +
                ff->role + " field '" + fa.key + "' (path: " + path_to(v) +
                "); " + why});
      }
      for (const auto& e : nodes[v].edges) {
        const std::string& crole = nodes[e.callee].role;
        if (crole == "handoff" || crole == "any") continue;
        if (crole.empty() || crole == rrole) {
          if (!parent.count(e.callee)) {
            parent[e.callee] = v;
            queue.push_back(e.callee);
          }
          continue;
        }
        const std::string dk = nodes[r].qual + "|" + nodes[e.callee].qual;
        if (!emitted.insert(dk).second) continue;
        out.push_back(Diag{
            "thread-role", nodes[v].fd->file->path, e.line,
            "thread:" + rrole + " function '" + nodes[r].qual +
                "' reaches thread:" + crole + " function '" +
                nodes[e.callee].qual + "' (path: " + path_to(v) + " -> " +
                nodes[e.callee].qual +
                "); route the crossing through a thread:handoff(<reason>) "
                "function"});
      }
    }
  }
}

}  // namespace vlint

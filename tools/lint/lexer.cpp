#include "lexer.h"

#include <cctype>

namespace vlint {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

std::string derive_layer(const std::string& path) {
  // "src/<layer>/..." -> "<layer>".
  const std::string prefix = "src/";
  if (path.rfind(prefix, 0) != 0) return "";
  const auto slash = path.find('/', prefix.size());
  if (slash == std::string::npos) return "";
  return path.substr(prefix.size(), slash - prefix.size());
}

void add_comment(LexedFile& out, int line, const std::string& text) {
  auto& slot = out.comments[line];
  if (!slot.empty()) slot += ' ';
  slot += text;
}

}  // namespace

LexedFile lex_file(const std::string& path, const std::string& text) {
  LexedFile out;
  out.path = path;
  out.layer = derive_layer(path);

  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto peek = [&](std::size_t k) -> char { return i + k < n ? text[i + k] : '\0'; };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Line comment. A backslash immediately before the newline splices the
    // next physical line into the comment (C++ phase-2 line splicing — the
    // same rule compilers apply, so code swallowed by a trailing '\' is
    // invisible here exactly as it is to the build).
    if (c == '/' && peek(1) == '/') {
      std::size_t j = i + 2;
      std::string body;
      const int first_line = line;
      while (j < n) {
        if (text[j] == '\\' && j + 1 < n &&
            (text[j + 1] == '\n' ||
             (text[j + 1] == '\r' && j + 2 < n && text[j + 2] == '\n'))) {
          j += text[j + 1] == '\n' ? 2 : 3;
          ++line;
          body += ' ';
          continue;
        }
        if (text[j] == '\n') break;
        body += text[j++];
      }
      // Attach to every physical line the comment spans (like a block
      // comment) so by-line annotation lookup works from any of them.
      for (int l = first_line; l <= line; ++l) add_comment(out, l, body);
      i = j;
      continue;
    }
    // Block comment (attached to every line it spans).
    if (c == '/' && peek(1) == '*') {
      std::size_t j = i + 2;
      std::size_t seg_start = j;
      int l = line;
      while (j + 1 < n && !(text[j] == '*' && text[j + 1] == '/')) {
        if (text[j] == '\n') {
          add_comment(out, l, text.substr(seg_start, j - seg_start));
          ++l;
          seg_start = j + 1;
        }
        ++j;
      }
      add_comment(out, l, text.substr(seg_start, std::min(j, n) - seg_start));
      i = j + 1 < n ? j + 2 : n;
      line = l;
      continue;
    }

    // Preprocessor directive: record #include targets, drop the rest of
    // the (possibly continued) logical line from the token stream.
    if (c == '#' && at_line_start) {
      std::size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
      std::size_t kw_end = j;
      while (kw_end < n && ident_char(text[kw_end])) ++kw_end;
      const std::string kw = text.substr(j, kw_end - j);
      if (kw == "include") {
        std::size_t p = kw_end;
        while (p < n && (text[p] == ' ' || text[p] == '\t')) ++p;
        if (p < n && (text[p] == '"' || text[p] == '<')) {
          const char close = text[p] == '<' ? '>' : '"';
          std::size_t q = p + 1;
          while (q < n && text[q] != close && text[q] != '\n') ++q;
          if (q < n && text[q] == close) {
            out.includes.push_back(
                Include{line, text.substr(p + 1, q - p - 1), close == '>'});
          }
        }
      }
      // Skip to end of logical line (honouring backslash continuations).
      while (i < n && text[i] != '\n') {
        if (text[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }

    at_line_start = false;

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim += text[j++];
      const std::string closer = ")" + delim + "\"";
      std::size_t end = text.find(closer, j);
      end = end == std::string::npos ? n : end + closer.size();
      for (std::size_t k = i; k < end; ++k) {
        if (text[k] == '\n') ++line;
      }
      out.toks.push_back(Tok{TokKind::kString, "<raw-string>", line});
      i = end;
      continue;
    }

    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(text[j])) ++j;
      out.toks.push_back(Tok{TokKind::kIdent, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (ident_char(text[j]) || text[j] == '.' ||
                       ((text[j] == '+' || text[j] == '-') && j > i &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      out.toks.push_back(Tok{TokKind::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) ++j;
        if (text[j] == '\n') ++line;
        ++j;
      }
      out.toks.push_back(Tok{TokKind::kString, text.substr(i, j + 1 - i), line});
      i = j + 1;
      continue;
    }

    // Punctuation. Only `::` and `->` matter as multi-char units.
    if (c == ':' && peek(1) == ':') {
      out.toks.push_back(Tok{TokKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      out.toks.push_back(Tok{TokKind::kPunct, "->", line});
      i += 2;
      continue;
    }
    out.toks.push_back(Tok{TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace vlint

#!/usr/bin/env python3
"""Golden-output fixture runner for vdbg_lint.

A fixture directory holds a miniature repo tree (src/...) plus:
    expected.txt       the exact diagnostics vdbg_lint must emit (sorted,
                       without the trailing summary line); empty or absent
                       means the fixture must lint clean
    suppressions.txt   optional; passed through when present
    flags.txt          optional; extra CLI flags, one per line (e.g. --stats)

The test fails on any diff between actual and expected diagnostics, or when
the exit code disagrees with whether diagnostics were expected.
"""

import argparse
import pathlib
import subprocess
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--lint", required=True, help="path to the vdbg_lint binary")
    ap.add_argument("--fixture", required=True, help="fixture directory")
    args = ap.parse_args()

    fixture = pathlib.Path(args.fixture)
    if not (fixture / "src").is_dir():
        print(f"fixture has no src/ tree: {fixture}", file=sys.stderr)
        return 2

    cmd = [args.lint, "--root", str(fixture)]
    sup = fixture / "suppressions.txt"
    if sup.is_file():
        cmd += ["--suppressions", str(sup)]
    flags = fixture / "flags.txt"
    if flags.is_file():
        cmd += [
            l.strip() for l in flags.read_text().splitlines() if l.strip()
        ]
    cmd.append("src")

    proc = subprocess.run(cmd, capture_output=True, text=True)
    lines = proc.stdout.splitlines()
    # Drop the trailing "vdbg_lint: N files, M diagnostic(s)" summary.
    diags = [l for l in lines if not l.startswith("vdbg_lint: ")]

    expected_path = fixture / "expected.txt"
    expected = []
    if expected_path.is_file():
        expected = [
            l for l in expected_path.read_text().splitlines() if l.strip()
        ]

    ok = True
    if diags != expected:
        ok = False
        print("diagnostic mismatch:", file=sys.stderr)
        print("--- expected ---", file=sys.stderr)
        print("\n".join(expected) or "(clean)", file=sys.stderr)
        print("--- actual ---", file=sys.stderr)
        print("\n".join(diags) or "(clean)", file=sys.stderr)

    want_rc = 1 if expected else 0
    if proc.returncode != want_rc:
        ok = False
        print(
            f"exit code {proc.returncode}, expected {want_rc}"
            f" (stderr: {proc.stderr.strip()})",
            file=sys.stderr,
        )

    if ok:
        print(f"fixture ok: {fixture.name} ({len(expected)} diagnostics)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

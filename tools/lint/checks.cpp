#include "checks.h"

#include <algorithm>
#include <map>
#include <set>

namespace vlint {

namespace {

struct BodyRef {
  const LexedFile* file = nullptr;
  int begin = -1;  // token index of '{'
  int end = -1;    // one past matching '}'
  bool ok() const { return file != nullptr && begin >= 0; }
};

/// First token index of identifier `name` in [begin,end), or -1.
int first_mention(const LexedFile& f, int begin, int end,
                  const std::string& name) {
  for (int k = begin; k < end; ++k) {
    if (f.toks[k].kind == TokKind::kIdent && f.toks[k].text == name) return k;
  }
  return -1;
}

std::string basename_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// (1) Snapshot completeness.
// ---------------------------------------------------------------------------

void check_snapshot_completeness(const Repo& repo, std::vector<Diag>& out) {
  // Out-of-line definitions indexed by Class::method.
  std::map<std::string, const FuncDef*> defs;
  for (const FuncDef& fd : repo.funcs) defs[fd.cls + "::" + fd.name] = &fd;

  for (const ClassInfo& ci : repo.classes) {
    if (!ci.save_declared || !ci.restore_declared) continue;

    auto body = [&](const char* method, int inline_begin,
                    int inline_end) -> BodyRef {
      if (inline_begin >= 0) return BodyRef{ci.file, inline_begin, inline_end};
      const auto it = defs.find(ci.name + "::" + method);
      if (it == defs.end()) return BodyRef{};
      return BodyRef{it->second->file, it->second->body_begin,
                     it->second->body_end};
    };
    const BodyRef save = body("save", ci.save_body_begin, ci.save_body_end);
    const BodyRef restore =
        body("restore", ci.restore_body_begin, ci.restore_body_end);
    // Bodies outside the scanned tree (declaration-only view): nothing to
    // compare against.
    if (!save.ok() || !restore.ok()) continue;

    struct Placed {
      const Member* m;
      int save_at;
      int restore_at;
    };
    std::vector<Placed> placed;
    for (const Member& m : ci.members) {
      if (m.is_reference || m.skip_reason) continue;
      const int s = first_mention(*save.file, save.begin, save.end, m.name);
      const int r =
          first_mention(*restore.file, restore.begin, restore.end, m.name);
      if (s < 0) {
        out.push_back({"snap-complete", ci.file->path, m.line,
                       "member '" + m.name + "' of class '" + ci.name +
                           "' is not serialized in save(); add it or annotate "
                           "// snap:skip(<reason>)"});
      }
      if (r < 0) {
        out.push_back({"snap-complete", ci.file->path, m.line,
                       "member '" + m.name + "' of class '" + ci.name +
                           "' is not restored in restore(); add it or "
                           "annotate // snap:skip(<reason>)"});
      }
      if (s >= 0 && r >= 0 && !m.reorder_reason) {
        placed.push_back({&m, s, r});
      }
    }

    // Order agreement: the members' first-touch order in save() must match
    // restore(), or the byte stream is read back misaligned. Flag only the
    // minimal out-of-place set (the members outside a longest increasing
    // subsequence of restore positions), so one late-restored member does
    // not drag every member serialized after it into the report.
    std::sort(placed.begin(), placed.end(),
              [](const Placed& a, const Placed& b) {
                return a.save_at < b.save_at;
              });
    const int n = static_cast<int>(placed.size());
    std::vector<int> len(n, 1), prev(n, -1);
    int best = n > 0 ? 0 : -1;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < i; ++j) {
        if (placed[j].restore_at < placed[i].restore_at &&
            len[j] + 1 > len[i]) {
          len[i] = len[j] + 1;
          prev[i] = j;
        }
      }
      if (len[i] > len[best]) best = i;
    }
    std::vector<bool> in_order(n, false);
    for (int i = best; i >= 0; i = prev[i]) in_order[i] = true;
    for (int i = 0; i < n; ++i) {
      if (in_order[i]) continue;
      const Placed& p = placed[i];
      out.push_back(
          {"snap-complete", ci.file->path, p.m->line,
           "class '" + ci.name + "' restores '" + p.m->name +
               "' at a different point than save() serializes it; align "
               "the order or annotate // snap:reorder(<reason>)"});
    }
  }
}

// ---------------------------------------------------------------------------
// (2) Replay-determinism purity.
// ---------------------------------------------------------------------------

void check_determinism(const Repo& repo, std::vector<Diag>& out) {
  static const std::set<std::string> kCheckedLayers = {"common", "cpu", "hw",
                                                       "vmm"};
  static const std::set<std::string> kBannedHeaders = {
      "chrono", "random", "ctime", "time.h", "sys/time.h", "thread",
      "x86intrin.h"};
  // Identifiers that are nondeterministic wherever they appear.
  static const std::set<std::string> kBannedIdents = {
      "srand",         "rand_r",        "drand48",
      "lrand48",       "srandom",       "getenv",
      "setenv",        "gettimeofday",  "localtime",
      "gmtime",        "strftime",      "clock_gettime",
      "mktime",        "random_device", "mt19937",
      "mt19937_64",    "minstd_rand",   "default_random_engine",
      "rdtsc",         "__rdtsc",       "chrono",
      "steady_clock",  "system_clock",  "high_resolution_clock",
      "this_thread",   "sleep_for"};
  // Identifiers banned only as direct (or std::-qualified) calls, so that
  // unrelated members named `time` or `clock_.now()` never trip the check.
  static const std::set<std::string> kBannedCalls = {"rand", "time", "clock",
                                                     "random"};

  for (const auto& fp : repo.files) {
    const LexedFile& f = *fp;
    if (kCheckedLayers.count(f.layer) == 0) continue;
    if (f.path.size() >= 12 &&
        f.path.compare(f.path.size() - 12, 12, "common/rng.h") == 0) {
      continue;  // the sanctioned deterministic PRNG
    }
    // Every det:host-boundary waiver must excuse at least one banned
    // source; the audit at the end of the loop flags waivers that have
    // gone stale (the host call moved or was deleted, leaving a blanket
    // exemption behind). Consecutive comment lines with identical bodies
    // are one spliced/block comment — track the run by its first line.
    struct Waiver {
      bool file_level = false;
      bool used = false;
    };
    std::map<int, Waiver> waivers;
    bool file_exempt = false;
    int prev_line = -2;
    std::string prev_body;
    for (const auto& [line, text] : f.comments) {
      const bool continuation = line == prev_line + 1 && text == prev_body;
      prev_line = line;
      prev_body = text;
      if (continuation) continue;
      if (text.find("det:host-boundary(") == std::string::npos) continue;
      // A file-level waiver sits above any code; per-line waivers are
      // consulted at each banned occurrence below.
      const bool file_level = f.toks.empty() || line <= f.toks[0].line;
      waivers[line] = {file_level, false};
      file_exempt = file_exempt || file_level;
    }
    const auto mark_used = [&](int line) {
      // Resolve a continuation line of a multi-line comment back to the
      // run's first line, which is the one keyed in the map.
      while (waivers.find(line) == waivers.end()) {
        const auto at = f.comments.find(line);
        const auto above = f.comments.find(line - 1);
        if (at == f.comments.end() || above == f.comments.end() ||
            above->second != at->second) {
          return;
        }
        --line;
      }
      waivers[line].used = true;
    };
    const auto waived = [&](int line) {
      bool ok = false;
      if (const auto a = find_annotation_at(f, line, "det:host-boundary")) {
        mark_used(a->line);
        ok = true;
      }
      if (file_exempt) {
        for (auto& [l, w] : waivers) w.used = w.used || w.file_level;
        ok = true;
      }
      return ok;
    };

    for (const Include& inc : f.includes) {
      if (kBannedHeaders.count(inc.path) == 0) continue;
      if (waived(inc.line)) continue;
      out.push_back({"det-pure", f.path, inc.line,
                     "include of nondeterministic header <" + inc.path +
                         "> in replay-deterministic layer '" + f.layer +
                         "'; use common/rng.h + the simulated clock, or "
                         "annotate // det:host-boundary(<reason>)"});
    }

    const auto& t = f.toks;
    for (int i = 0; i < static_cast<int>(t.size()); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      bool banned = kBannedIdents.count(t[i].text) > 0;
      if (!banned && kBannedCalls.count(t[i].text) > 0 &&
          i + 1 < static_cast<int>(t.size()) && t[i + 1].text == "(") {
        // Direct call or std::-qualified call only.
        const std::string prev = i > 0 ? t[i - 1].text : "";
        banned = prev != "." && prev != "->" &&
                 (prev != "::" || (i >= 2 && t[i - 2].text == "std"));
      }
      if (!banned) continue;
      if (waived(t[i].line)) continue;
      out.push_back({"det-pure", f.path, t[i].line,
                     "nondeterministic source '" + t[i].text +
                         "' in replay-deterministic layer '" + f.layer +
                         "'; use common/rng.h + the simulated clock, or "
                         "annotate // det:host-boundary(<reason>)"});
    }

    for (const auto& [line, w] : waivers) {
      if (w.used) continue;
      out.push_back({"det-pure", f.path, line,
                     "stale det:host-boundary waiver: no nondeterministic "
                     "header or identifier is excused by this annotation; "
                     "delete it or move it next to the host call it covers"});
    }
  }
}

// ---------------------------------------------------------------------------
// (3) Charge discipline.
// ---------------------------------------------------------------------------

namespace {

struct WalkResult {
  std::vector<int> uncovered_return_lines;
  std::vector<int> double_charge_lines;
  bool top_covered_at_end = false;
  bool ends_with_block = false;  // last body token before '}' closes a block
};

/// Structured walk of a function body. Scopes inherit coverage on '{' and
/// discard it on '}' (an if-branch charge proves nothing to its parent);
/// `case`/`default` labels reset the switch scope to its parent's state so
/// one charged case cannot vouch for its siblings.
WalkResult walk_charges(const FuncDef& fd, const std::set<std::string>& sinks) {
  const auto& t = fd.file->toks;
  struct Scope {
    bool covered;
    int direct;
  };
  std::vector<Scope> st{{false, 0}};
  WalkResult res;

  const int begin = fd.body_begin + 1;
  const int end = fd.body_end - 1;  // exclude the closing '}'
  for (int i = begin; i < end; ++i) {
    const Tok& tok = t[i];
    const std::string& s = tok.text;

    // Lambda literal: a deferred body proves nothing about this path —
    // skip it entirely.
    if (s == "[") {
      const std::string prev = i > begin ? t[i - 1].text : "";
      const bool subscript = prev == "]" || prev == ")" ||
                             (i > begin && t[i - 1].kind == TokKind::kIdent);
      if (!subscript) {
        int k = i;
        int bracket = 0;
        for (; k < end; ++k) {
          if (t[k].text == "[") ++bracket;
          if (t[k].text == "]" && --bracket == 0) break;
        }
        ++k;
        if (k < end && t[k].text == "(") {
          int paren = 0;
          for (; k < end; ++k) {
            if (t[k].text == "(") ++paren;
            if (t[k].text == ")" && --paren == 0) break;
          }
          ++k;
        }
        int guard = 0;
        while (k < end && t[k].text != "{" && t[k].text != ";" && guard++ < 16)
          ++k;
        if (k < end && t[k].text == "{") {
          i = match_brace(t, k) - 1;
          continue;
        }
      }
    }

    if (s == "{") {
      st.push_back(st.back());
      continue;
    }
    if (s == "}") {
      if (st.size() > 1) st.pop_back();
      continue;
    }
    if (tok.kind != TokKind::kIdent) continue;

    if (s == "case" || (s == "default" && i + 1 < end && t[i + 1].text == ":")) {
      st.back() = st.size() >= 2 ? st[st.size() - 2] : Scope{false, 0};
      continue;
    }
    if (s == "return") {
      bool covered = st.back().covered;
      // `return helper(...)` where the helper itself charges.
      for (int k = i + 1; k < end && t[k].text != ";"; ++k) {
        if (t[k].kind == TokKind::kIdent && k + 1 < end &&
            t[k + 1].text == "(" && sinks.count(t[k].text)) {
          covered = true;
        }
      }
      if (!covered) res.uncovered_return_lines.push_back(tok.line);
      continue;
    }
    // Call expression.
    if (i + 1 < end && t[i + 1].text == "(" && sinks.count(s)) {
      if (s == "charge") {
        if (++st.back().direct == 2) {
          res.double_charge_lines.push_back(tok.line);
        }
      }
      st.back().covered = true;
    }
  }
  res.top_covered_at_end = st.front().covered;
  res.ends_with_block = end - 1 > fd.body_begin && t[end - 1].text == "}";
  return res;
}

bool is_exit_handler_file(const std::string& path) {
  return basename_of(path).rfind("exit_", 0) == 0;
}

}  // namespace

void check_charge_discipline(const Repo& repo, std::vector<Diag>& out) {
  // Sinks: the charge API itself, every function annotated
  // charge:covered, and (to fixpoint) every vmm function proven to charge
  // on all paths.
  std::set<std::string> sinks = {"charge"};
  std::vector<const FuncDef*> vmm_funcs;
  for (const FuncDef& fd : repo.funcs) {
    if (fd.file->layer != "vmm") continue;
    vmm_funcs.push_back(&fd);
    if (find_annotation(*fd.file, fd.line, "charge:covered")) {
      sinks.insert(fd.name);
    }
  }
  for (bool grew = true; grew;) {
    grew = false;
    for (const FuncDef* fd : vmm_funcs) {
      if (sinks.count(fd->name)) continue;
      const WalkResult r = walk_charges(*fd, sinks);
      if (r.uncovered_return_lines.empty() && r.top_covered_at_end) {
        sinks.insert(fd->name);
        grew = true;
      }
    }
  }

  for (const FuncDef* fd : vmm_funcs) {
    if (!is_exit_handler_file(fd->file->path)) continue;
    if (find_annotation(*fd->file, fd->line, "charge:exempt")) continue;
    // charge:covered asserts the discipline holds in a way the walker
    // cannot see; enforcing the body would contradict the annotation.
    if (find_annotation(*fd->file, fd->line, "charge:covered")) continue;
    const WalkResult r = walk_charges(*fd, sinks);
    for (int line : r.uncovered_return_lines) {
      out.push_back({"charge-path", fd->file->path, line,
                     "exit handler '" + fd->cls + "::" + fd->name +
                         "' has a return path that never charges monitor "
                         "cycles; charge() it or annotate the function "
                         "// charge:exempt(<reason>)"});
    }
    if (fd->returns_void && !r.ends_with_block && !r.top_covered_at_end &&
        r.uncovered_return_lines.empty()) {
      out.push_back({"charge-path", fd->file->path, fd->line,
                     "exit handler '" + fd->cls + "::" + fd->name +
                         "' can fall off the end without charging monitor "
                         "cycles"});
    }
    for (int line : r.double_charge_lines) {
      out.push_back({"charge-path", fd->file->path, line,
                     "exit handler '" + fd->cls + "::" + fd->name +
                         "' charges twice on the same path (ambiguous "
                         "double charge)"});
    }
  }
}

// ---------------------------------------------------------------------------
// (4) Layer DAG.
// ---------------------------------------------------------------------------

void check_layer_dag(const Repo& repo, std::vector<Diag>& out) {
  // common <- {net, cpu} <- asm <- hw <- vmm <- {fullvmm, debug, guest}
  // <- fleet <- harness. Every edge is explicit: a new cross-layer include
  // is a deliberate architecture change, not a drive-by.
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"common", {"common"}},
      {"net", {"net", "common"}},
      {"cpu", {"cpu", "common"}},
      {"asm", {"asm", "common", "cpu"}},
      {"hw", {"hw", "common", "cpu", "asm", "net"}},
      {"vmm", {"vmm", "common", "cpu", "hw"}},
      {"fullvmm", {"fullvmm", "common", "cpu", "hw", "vmm"}},
      {"debug", {"debug", "common", "cpu", "asm", "hw", "vmm"}},
      {"guest", {"guest", "common", "cpu", "asm", "net", "hw"}},
      {"fleet",
       {"fleet", "common", "cpu", "asm", "net", "hw", "vmm", "fullvmm",
        "debug", "guest"}},
      {"harness",
       {"harness", "common", "cpu", "asm", "net", "hw", "vmm", "fullvmm",
        "debug", "guest", "fleet"}},
  };

  for (const auto& fp : repo.files) {
    const LexedFile& f = *fp;
    const auto allowed = kAllowed.find(f.layer);
    if (allowed == kAllowed.end()) continue;
    for (const Include& inc : f.includes) {
      if (inc.angled) continue;  // system headers are not layer edges
      const auto slash = inc.path.find('/');
      if (slash == std::string::npos) continue;
      const std::string target = inc.path.substr(0, slash);
      if (kAllowed.count(target) == 0) continue;  // not a layer path
      if (allowed->second.count(target)) continue;
      out.push_back({"layer-dag", f.path, inc.line,
                     "layer '" + f.layer + "' may not include \"" + inc.path +
                         "\": '" + target +
                         "' is not below it in the layer DAG (common <- "
                         "{net, cpu} <- asm <- hw <- vmm <- {fullvmm, "
                         "debug, guest} <- fleet <- harness)"});
    }
  }
}

// ---------------------------------------------------------------------------
// (5) Metric naming.
// ---------------------------------------------------------------------------

namespace {

bool valid_metric_segments(const std::string& name) {
  unsigned segments = 0;
  std::size_t seg_len = 0;
  for (const char c : name) {
    if (c == '.') {
      if (seg_len == 0) return false;  // empty segment
      ++segments;
      seg_len = 0;
      continue;
    }
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
    ++seg_len;
  }
  if (seg_len == 0) return false;  // trailing dot / empty name
  return segments + 1 >= 3;
}

}  // namespace

void check_metric_names(const Repo& repo, std::vector<Diag>& out) {
  static const std::set<std::string> kRegistrars = {
      "add_counter", "add_gauge", "add_histogram"};
  // Registration-site table: the first two segments of a metric name are
  // its family, and every family is owned by exactly one layer — the only
  // place it may be registered. A family absent from this table is a
  // diagnostic, so adding a metric family means adding its owner here.
  // (vmm.multiverse lives in src/fleet: the multiverse coordinator sits
  // above the vmm layer even though it narrates vmm-level work.)
  static const std::map<std::string, std::string> kFamilyOwner = {
      // cpu: execution tiers, TLB, PC profiler, COW physical memory.
      {"cpu.core", "cpu"},
      {"cpu.block", "cpu"},
      {"cpu.sbc", "cpu"},
      {"cpu.tlb", "cpu"},
      {"cpu.profile", "cpu"},
      {"mem.cow", "cpu"},
      // hw: devices and the machine event loop.
      {"hw.machine", "hw"},
      {"hw.nic", "hw"},
      {"hw.pit", "hw"},
      {"hw.uart", "hw"},
      // vmm: exit accounting, IRQ spans, vTLB, exit tracing, time travel,
      // flight loop.
      {"vmm.exit", "vmm"},
      {"vmm.trace", "vmm"},
      {"vmm.irqspan", "vmm"},
      {"vmm.vtlb", "vmm"},
      {"vmm.tt", "vmm"},
      {"vmm.flight", "vmm"},
      // fleet: multiverse exploration and the per-machine metrics series.
      {"vmm.multiverse", "fleet"},
      {"fleet.series", "fleet"},
  };

  for (const auto& fp : repo.files) {
    const LexedFile& f = *fp;
    for (std::size_t k = 0; k + 2 < f.toks.size(); ++k) {
      const Tok& t = f.toks[k];
      if (t.kind != TokKind::kIdent || kRegistrars.count(t.text) == 0) {
        continue;
      }
      if (f.toks[k + 1].text != "(") continue;  // declaration or mention
      const Tok& arg = f.toks[k + 2];
      // Only literal names are statically checkable; dynamic names
      // (prefix + ".x") are validated by the registry at runtime.
      if (arg.kind != TokKind::kString) continue;
      std::string name = arg.text;
      if (name.size() >= 2 && name.front() == '"' && name.back() == '"') {
        name = name.substr(1, name.size() - 2);
      }
      if (!valid_metric_segments(name)) {
        out.push_back(
            {"metric-name", f.path, arg.line,
             "metric name \"" + name +
                 "\" must be layer.component.metric: at least three "
                 "non-empty dot-separated segments of [a-z0-9_]"});
        continue;  // a malformed name has no meaningful family
      }
      const auto second_dot = name.find('.', name.find('.') + 1);
      const std::string family = name.substr(0, second_dot);
      const auto owner = kFamilyOwner.find(family);
      if (owner == kFamilyOwner.end()) {
        out.push_back(
            {"metric-name", f.path, arg.line,
             "metric family \"" + family +
                 "\" has no owner in the registration-site table; add it "
                 "next to its owning layer in tools/lint/checks.cpp "
                 "(check_metric_names)"});
      } else if (owner->second != f.layer) {
        out.push_back(
            {"metric-name", f.path, arg.line,
             "metric \"" + name + "\": family \"" + family +
                 "\" is owned by layer '" + owner->second +
                 "' and may not be registered from layer '" + f.layer +
                 "'"});
      }
    }
  }
}

}  // namespace vlint

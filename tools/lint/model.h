// Structural model extracted from the token streams: classes with their
// declared data members and snapshot annotations, and out-of-line member
// function definitions with body token ranges. Shared by the checkers.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "lexer.h"

namespace vlint {

// Annotation grammar (DESIGN.md, "Static analysis"):
//   // snap:skip(<reason>)       member is deliberately not serialized
//   // snap:reorder(<reason>)    member is serialized but restored at a
//                                different point than it was saved
//   // det:host-boundary(<reason>)  file (or line) may touch host
//                                nondeterminism sources
//   // charge:exempt(<reason>)   function in an exit handler file is a
//                                helper, not an exit path
//   // charge:covered(<reason>)  function satisfies charge discipline for
//                                its callers without a statically visible
//                                charge on every path
//
// An annotation (including its closing parenthesis) must fit on one comment
// line, placed on the annotated line itself or in the contiguous comment
// block directly above it.
std::optional<std::string> find_annotation(const LexedFile& file, int line,
                                           const std::string& key);

/// An annotation value together with the comment line that supplied it
/// (needed by waiver-staleness tracking: a waiver that never fires is
/// itself a diagnostic).
struct Annotation {
  std::string value;
  int line = 0;
};
std::optional<Annotation> find_annotation_at(const LexedFile& file, int line,
                                             const std::string& key);

struct Member {
  std::string name;
  int line = 0;
  bool is_reference = false;  // references are wiring by construction
  std::optional<std::string> skip_reason;     // snap:skip
  std::optional<std::string> reorder_reason;  // snap:reorder
};

struct ClassInfo {
  std::string name;
  const LexedFile* file = nullptr;
  int line = 0;
  std::vector<Member> members;
  bool save_declared = false;
  bool restore_declared = false;
  // Inline bodies: token index of '{' and one past the matching '}'
  // (-1 when the method is declared but defined out of line).
  int save_body_begin = -1, save_body_end = -1;
  int restore_body_begin = -1, restore_body_end = -1;
  // The class body itself: token index of '{' and one past the matching
  // '}'. The concurrency checkers rescan it for guard:/thread: field
  // annotations (fields there follow no naming convention, unlike the
  // trailing-underscore members above).
  int body_begin = -1, body_end = -1;
};

struct FuncDef {
  std::string cls;   // enclosing class of a Cls::name definition
  std::string name;
  const LexedFile* file = nullptr;
  int line = 0;
  bool returns_void = false;
  int body_begin = 0;  // token index of '{'
  int body_end = 0;    // one past the matching '}'
};

/// Extracts class definitions (with members and inline save/restore
/// bodies) from a lexed file. Nested classes are modelled independently.
std::vector<ClassInfo> extract_classes(const LexedFile& file);

/// Extracts out-of-line member function definitions (`Cls::name(...) {`).
std::vector<FuncDef> extract_funcs(const LexedFile& file);

/// Extracts every function body: out-of-line member definitions, free
/// functions at namespace scope, and methods defined inline in class
/// bodies (`cls` is the enclosing class, "" for free functions). The
/// concurrency checkers walk these; charge-path keeps the narrower
/// extract_funcs() view it was tuned on.
std::vector<FuncDef> extract_all_funcs(const LexedFile& file);

/// Index one past the brace that matches toks[open] (toks[open] == "{").
int match_brace(const std::vector<Tok>& toks, int open);

}  // namespace vlint

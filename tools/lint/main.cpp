// vdbg_lint — repo-invariant static analyzer for the vdbg tree.
//
// Five checkers (see checks.h and DESIGN.md, "Static analysis"):
//   snap-complete  snapshot save/restore completeness and order
//   det-pure       replay-determinism purity of the simulated layers
//   charge-path    cost-model charge discipline in VM-exit handlers
//   layer-dag      include edges respect the layer DAG
//   metric-name    registry metric names follow layer.component.metric
//
// Usage:
//   vdbg_lint [--root <dir>] [--suppressions <file>] [scan-dirs...]
//
// Scan dirs default to "src", relative to --root (default "."). Emits
// file:line diagnostics relative to the root; exit code 0 when clean,
// 1 when any unsuppressed diagnostic remains, 2 on usage/IO errors.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "checks.h"
#include "lexer.h"
#include "model.h"

namespace fs = std::filesystem;

namespace {

struct Suppression {
  std::string check;     // exact checker id, or "*"
  std::string path_sub;  // substring of the diagnostic path ("" = any)
  std::string msg_sub;   // substring of the message ("" = any)
};

std::vector<Suppression> load_suppressions(const std::string& path) {
  std::vector<Suppression> out;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "vdbg_lint: cannot read suppression file: " << path << "\n";
    std::exit(2);
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    Suppression s;
    std::istringstream ls(line);
    std::getline(ls, s.check, '|');
    std::getline(ls, s.path_sub, '|');
    std::getline(ls, s.msg_sub, '|');
    if (!s.check.empty()) out.push_back(std::move(s));
  }
  return out;
}

bool suppressed(const vlint::Diag& d, const std::vector<Suppression>& sups) {
  for (const Suppression& s : sups) {
    if (s.check != "*" && s.check != d.check) continue;
    if (!s.path_sub.empty() && d.path.find(s.path_sub) == std::string::npos) {
      continue;
    }
    if (!s.msg_sub.empty() && d.message.find(s.msg_sub) == std::string::npos) {
      continue;
    }
    return true;
  }
  return false;
}

bool source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string relative_slashed(const fs::path& p, const fs::path& root) {
  std::string s = fs::relative(p, root).generic_string();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string suppressions_path;
  std::vector<std::string> scan_dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--suppressions" && i + 1 < argc) {
      suppressions_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: vdbg_lint [--root <dir>] [--suppressions <file>] "
                   "[scan-dirs...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "vdbg_lint: unknown option: " << arg << "\n";
      return 2;
    } else {
      scan_dirs.push_back(arg);
    }
  }
  if (scan_dirs.empty()) scan_dirs.push_back("src");

  const fs::path root_path(root);
  std::vector<fs::path> sources;
  for (const std::string& dir : scan_dirs) {
    const fs::path base = root_path / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) {
      std::cerr << "vdbg_lint: not a directory: " << base.string() << "\n";
      return 2;
    }
    for (auto it = fs::recursive_directory_iterator(base, ec);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_regular_file() && source_extension(it->path())) {
        sources.push_back(it->path());
      }
    }
  }
  std::sort(sources.begin(), sources.end());

  vlint::Repo repo;
  for (const fs::path& p : sources) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "vdbg_lint: cannot read: " << p.string() << "\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto lexed = std::make_unique<vlint::LexedFile>(
        vlint::lex_file(relative_slashed(p, root_path), text.str()));
    repo.files.push_back(std::move(lexed));
  }
  for (const auto& f : repo.files) {
    for (auto& ci : vlint::extract_classes(*f)) {
      repo.classes.push_back(std::move(ci));
    }
    for (auto& fd : vlint::extract_funcs(*f)) {
      repo.funcs.push_back(std::move(fd));
    }
  }

  std::vector<vlint::Diag> diags;
  vlint::check_snapshot_completeness(repo, diags);
  vlint::check_determinism(repo, diags);
  vlint::check_charge_discipline(repo, diags);
  vlint::check_layer_dag(repo, diags);
  vlint::check_metric_names(repo, diags);

  std::vector<Suppression> sups;
  if (!suppressions_path.empty()) sups = load_suppressions(suppressions_path);

  std::sort(diags.begin(), diags.end(),
            [](const vlint::Diag& a, const vlint::Diag& b) {
              return std::tie(a.path, a.line, a.check, a.message) <
                     std::tie(b.path, b.line, b.check, b.message);
            });

  int reported = 0;
  int hidden = 0;
  for (const vlint::Diag& d : diags) {
    if (suppressed(d, sups)) {
      ++hidden;
      continue;
    }
    std::cout << d.path << ":" << d.line << ": error: [" << d.check << "] "
              << d.message << "\n";
    ++reported;
  }
  std::cout << "vdbg_lint: " << repo.files.size() << " files, " << reported
            << " diagnostic(s)";
  if (hidden > 0) std::cout << " (" << hidden << " suppressed)";
  std::cout << "\n";
  return reported == 0 ? 0 : 1;
}

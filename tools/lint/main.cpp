// vdbg_lint — repo-invariant static analyzer for the vdbg tree.
//
// Seven checkers (see checks.h and DESIGN.md, "Static analysis"):
//   snap-complete  snapshot save/restore completeness and order
//   det-pure       replay-determinism purity of the simulated layers
//   charge-path    cost-model charge discipline in VM-exit handlers
//   layer-dag      include edges respect the layer DAG
//   metric-name    registry metric names follow layer.component.metric and
//                  each family registers only from its owning layer
//   lock-guard     guard:by fields only touched with their mutex held
//   thread-role    thread:* call graph never crosses exclusive roles
//
// Usage:
//   vdbg_lint [--root <dir>] [--suppressions <file>] [--stats] [scan-dirs...]
//
// Scan dirs default to "src", relative to --root (default "."). Emits
// file:line diagnostics relative to the root; exit code 0 when clean,
// 1 when any unsuppressed diagnostic remains, 2 on usage/IO errors.
// --stats prints per-checker finding/suppression/waiver counts and turns
// stale suppression entries (ones matching no diagnostic) into
// diagnostics of their own.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "checks.h"
#include "lexer.h"
#include "model.h"

namespace fs = std::filesystem;

namespace {

struct Suppression {
  std::string check;     // exact checker id, or "*"
  std::string path_sub;  // substring of the diagnostic path ("" = any)
  std::string msg_sub;   // substring of the message ("" = any)
  int line = 0;          // line in the suppression file (staleness reports)
  bool used = false;     // matched at least one diagnostic this run
};

std::vector<Suppression> load_suppressions(const std::string& path) {
  std::vector<Suppression> out;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "vdbg_lint: cannot read suppression file: " << path << "\n";
    std::exit(2);
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    Suppression s;
    std::istringstream ls(line);
    std::getline(ls, s.check, '|');
    std::getline(ls, s.path_sub, '|');
    std::getline(ls, s.msg_sub, '|');
    s.line = lineno;
    if (!s.check.empty()) out.push_back(std::move(s));
  }
  return out;
}

bool suppressed(const vlint::Diag& d, std::vector<Suppression>& sups) {
  if (d.check == "stale-suppression") return false;  // not itself waivable
  for (Suppression& s : sups) {
    if (s.check != "*" && s.check != d.check) continue;
    if (!s.path_sub.empty() && d.path.find(s.path_sub) == std::string::npos) {
      continue;
    }
    if (!s.msg_sub.empty() && d.message.find(s.msg_sub) == std::string::npos) {
      continue;
    }
    s.used = true;
    return true;
  }
  return false;
}

// Waiver annotations per checker, for --stats accounting. Comment lines
// spanned by one spliced/block comment carry identical bodies; such runs
// count once.
const std::vector<std::pair<std::string, std::vector<std::string>>>
    kWaiverKeys = {
        {"snap-complete", {"snap:skip", "snap:reorder"}},
        {"det-pure", {"det:host-boundary"}},
        {"charge-path", {"charge:exempt", "charge:covered"}},
        {"layer-dag", {}},
        {"metric-name", {}},
        {"lock-guard", {"guard:exempt"}},
        {"thread-role", {"thread:handoff"}},
};

std::map<std::string, int> count_waivers(const vlint::Repo& repo) {
  std::map<std::string, int> out;
  for (const auto& [check, keys] : kWaiverKeys) out[check] = 0;
  for (const auto& f : repo.files) {
    int prev_line = -2;
    std::string prev_body;
    for (const auto& [line, body] : f->comments) {
      const bool continuation = line == prev_line + 1 && body == prev_body;
      prev_line = line;
      prev_body = body;
      if (continuation) continue;
      for (const auto& [check, keys] : kWaiverKeys) {
        for (const auto& key : keys) {
          const std::string needle = key + "(";
          for (std::size_t at = body.find(needle); at != std::string::npos;
               at = body.find(needle, at + needle.size())) {
            ++out[check];
          }
        }
      }
    }
  }
  return out;
}

bool source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string relative_slashed(const fs::path& p, const fs::path& root) {
  std::string s = fs::relative(p, root).generic_string();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string suppressions_path;
  bool stats = false;
  std::vector<std::string> scan_dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--suppressions" && i + 1 < argc) {
      suppressions_path = argv[++i];
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: vdbg_lint [--root <dir>] [--suppressions <file>] "
                   "[--stats] [scan-dirs...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "vdbg_lint: unknown option: " << arg << "\n";
      return 2;
    } else {
      scan_dirs.push_back(arg);
    }
  }
  if (scan_dirs.empty()) scan_dirs.push_back("src");

  const fs::path root_path(root);
  std::vector<fs::path> sources;
  for (const std::string& dir : scan_dirs) {
    const fs::path base = root_path / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) {
      std::cerr << "vdbg_lint: not a directory: " << base.string() << "\n";
      return 2;
    }
    for (auto it = fs::recursive_directory_iterator(base, ec);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_regular_file() && source_extension(it->path())) {
        sources.push_back(it->path());
      }
    }
  }
  std::sort(sources.begin(), sources.end());

  vlint::Repo repo;
  for (const fs::path& p : sources) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "vdbg_lint: cannot read: " << p.string() << "\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto lexed = std::make_unique<vlint::LexedFile>(
        vlint::lex_file(relative_slashed(p, root_path), text.str()));
    repo.files.push_back(std::move(lexed));
  }
  for (const auto& f : repo.files) {
    for (auto& ci : vlint::extract_classes(*f)) {
      repo.classes.push_back(std::move(ci));
    }
    for (auto& fd : vlint::extract_funcs(*f)) {
      repo.funcs.push_back(std::move(fd));
    }
    for (auto& fd : vlint::extract_all_funcs(*f)) {
      repo.all_funcs.push_back(std::move(fd));
    }
  }

  std::vector<vlint::Diag> diags;
  vlint::check_snapshot_completeness(repo, diags);
  vlint::check_determinism(repo, diags);
  vlint::check_charge_discipline(repo, diags);
  vlint::check_layer_dag(repo, diags);
  vlint::check_metric_names(repo, diags);
  vlint::check_lock_guard(repo, diags);
  vlint::check_thread_role(repo, diags);

  std::vector<Suppression> sups;
  if (!suppressions_path.empty()) sups = load_suppressions(suppressions_path);

  std::sort(diags.begin(), diags.end(),
            [](const vlint::Diag& a, const vlint::Diag& b) {
              return std::tie(a.path, a.line, a.check, a.message) <
                     std::tie(b.path, b.line, b.check, b.message);
            });

  int reported = 0;
  int hidden = 0;
  std::map<std::string, int> reported_by, hidden_by;
  for (const vlint::Diag& d : diags) {
    if (suppressed(d, sups)) {
      ++hidden;
      ++hidden_by[d.check];
      continue;
    }
    std::cout << d.path << ":" << d.line << ": error: [" << d.check << "] "
              << d.message << "\n";
    ++reported;
    ++reported_by[d.check];
  }

  if (stats) {
    // Stale suppressions are findings in their own right: an entry that
    // matches nothing either outlived its diagnostic or never matched.
    std::string sup_path = suppressions_path;
    if (!sup_path.empty()) {
      std::error_code ec;
      const fs::path rel = fs::relative(sup_path, root_path, ec);
      if (!ec && !rel.empty()) sup_path = rel.generic_string();
    }
    for (const Suppression& s : sups) {
      if (s.used) continue;
      std::cout << sup_path << ":" << s.line
                << ": error: [stale-suppression] entry '" << s.check << "|"
                << s.path_sub << "|" << s.msg_sub
                << "' matches no diagnostic; delete it\n";
      ++reported;
      ++reported_by["stale-suppression"];
    }
    const std::map<std::string, int> waivers = count_waivers(repo);
    for (const auto& [check, keys] : kWaiverKeys) {
      std::cout << "vdbg_lint: stats " << check << ": "
                << reported_by[check] << " finding(s), " << hidden_by[check]
                << " suppressed, " << waivers.at(check) << " waiver(s)\n";
    }
    if (reported_by.count("stale-suppression")) {
      std::cout << "vdbg_lint: stats stale-suppression: "
                << reported_by["stale-suppression"] << " finding(s)\n";
    }
  }

  std::cout << "vdbg_lint: " << repo.files.size() << " files, " << reported
            << " diagnostic(s)";
  if (hidden > 0) std::cout << " (" << hidden << " suppressed)";
  std::cout << "\n";
  return reported == 0 ? 0 : 1;
}

// The five repo-invariant checkers. Each takes the fully lexed repo model
// and appends file:line diagnostics; main.cpp applies the suppression file
// and decides the exit code.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lexer.h"
#include "model.h"

namespace vlint {

struct Diag {
  // "snap-complete" | "det-pure" | "charge-path" | "layer-dag" |
  // "metric-name" | "lock-guard" | "thread-role"
  std::string check;
  std::string path;
  int line = 0;
  std::string message;
};

struct Repo {
  std::vector<std::unique_ptr<LexedFile>> files;
  std::vector<ClassInfo> classes;   // all classes from all files
  std::vector<FuncDef> funcs;       // all out-of-line member definitions
  std::vector<FuncDef> all_funcs;   // + free functions and inline methods
};

/// (1) Snapshot completeness: every data member of a class with both
/// save(SnapshotWriter&) and restore(SnapshotReader&) must appear in both
/// bodies, in the same relative order, unless reference wiring or
/// annotated `// snap:skip(<reason>)` / `// snap:reorder(<reason>)`.
void check_snapshot_completeness(const Repo& repo, std::vector<Diag>& out);

/// (2) Replay-determinism purity: no wall-clock, RNG or environment access
/// anywhere under src/cpu, src/hw, src/vmm, src/common. common/rng.h is
/// the one sanctioned randomness source; host-sink files opt out with a
/// `// det:host-boundary(<reason>)` annotation. Waivers are audited: an
/// annotation that no longer excuses any banned header or identifier (the
/// host call moved or was deleted) is reported as stale.
void check_determinism(const Repo& repo, std::vector<Diag>& out);

/// (3) Charge discipline: every handler defined in src/vmm/exit_*.cpp must
/// reach the cost-model charge API on every return path, exactly once
/// directly. Helpers opt out with `// charge:exempt(<reason>)`; functions
/// that satisfy the discipline for their callers without a statically
/// visible charge declare `// charge:covered(<reason>)`.
void check_charge_discipline(const Repo& repo, std::vector<Diag>& out);

/// (4) Layer DAG: includes must respect
/// common <- {net, cpu} <- asm <- hw <- vmm <- {fullvmm, debug, guest}
/// <- harness (see DESIGN.md, "Static analysis" for the full edge list).
void check_layer_dag(const Repo& repo, std::vector<Diag>& out);

/// (5) Metric naming: every string-literal name passed to
/// MetricsRegistry::add_counter / add_gauge / add_histogram must follow
/// `layer.component.metric` — at least three non-empty dot-separated
/// segments of [a-z0-9_]. The first two segments are the metric family;
/// each family has exactly one owning layer (the registration-site table
/// in check_metric_names) and may only be registered from it. Dynamically
/// built names (prefix + "...") are skipped here; the registry validates
/// them at registration time.
void check_metric_names(const Repo& repo, std::vector<Diag>& out);

/// (6) Lock discipline: a field annotated `// guard:by(<mutex>)` (or
/// `VDBG_GUARDED_BY(<mutex>)`) may only be accessed in a scope that holds
/// the named mutex — a vdbg::MutexLock / std::lock_guard / unique_lock /
/// scoped_lock naming it, a manual `<mutex>.lock()`, or a
/// `// guard:held(<mutex>)` / VDBG_REQUIRES precondition on the enclosing
/// function. Lambda bodies start with nothing held (they usually run on
/// another thread). `// guard:exempt(<reason>)` waives one access (on its
/// line) or a whole function (above the signature); a waiver that never
/// fires is itself a diagnostic.
void check_lock_guard(const Repo& repo, std::vector<Diag>& out);

/// (7) Thread roles: functions and fields in src/fleet (plus the flight
/// recorder, log and metrics files) tagged `// thread:worker(..)`,
/// `thread:monitor(..)`, `thread:server(..)`, `thread:init-only(..)` or
/// `thread:any(..)`. Walks the call graph from every tagged function and
/// reports paths that reach a function or field of a *different* exclusive
/// role without passing a `// thread:handoff(<reason>)` function.
/// std::atomic, thread_local and guard:by fields are the only sanctioned
/// data crossings; init-only fields additionally allow reads from any role
/// (writes only from init-only). Untagged functions inherit the caller's
/// role; thread:any bodies are checked once, as callable from anywhere.
void check_thread_role(const Repo& repo, std::vector<Diag>& out);

}  // namespace vlint

#!/usr/bin/env python3
"""Unit tests for check_bench.py: the gate must fail loudly, never
silently, when a baseline entry has nothing to compare against."""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

SCRIPT = pathlib.Path(__file__).resolve().parent / "check_bench.py"


def run_gate(baseline, results_list):
    with tempfile.TemporaryDirectory() as d:
        base_path = pathlib.Path(d) / "baseline.json"
        base_path.write_text(
            baseline if isinstance(baseline, str) else json.dumps(baseline))
        args = [sys.executable, str(SCRIPT), "--baseline", str(base_path)]
        for i, res in enumerate(results_list):
            res_path = pathlib.Path(d) / f"res{i}.json"
            res_path.write_text(
                res if isinstance(res, str) else json.dumps(res))
            args.append(str(res_path))
        return subprocess.run(args, capture_output=True, text=True)


def results_with(name, **counters):
    return {"benchmarks": [{"name": name, **counters}]}


BASELINE = {"bm_exit": {"charged": {"value": 100, "direction": "lower"}}}


class CheckBenchTest(unittest.TestCase):
    def test_within_threshold_passes(self):
        p = run_gate(BASELINE, [results_with("bm_exit", charged=110)])
        self.assertEqual(p.returncode, 0, p.stderr)
        self.assertIn("all 1 gated counters", p.stdout)

    def test_regression_fails(self):
        p = run_gate(BASELINE, [results_with("bm_exit", charged=200)])
        self.assertEqual(p.returncode, 1)
        self.assertIn("bm_exit.charged", p.stderr)

    def test_missing_benchmark_fails(self):
        p = run_gate(BASELINE, [results_with("bm_other", charged=1)])
        self.assertEqual(p.returncode, 1)
        self.assertIn("missing from results", p.stderr)

    def test_missing_counter_fails(self):
        p = run_gate(BASELINE, [results_with("bm_exit", other=5)])
        self.assertEqual(p.returncode, 1)
        self.assertIn("counter missing", p.stderr)

    def test_non_numeric_counter_fails(self):
        p = run_gate(BASELINE, [results_with("bm_exit", charged="oops")])
        self.assertEqual(p.returncode, 1)
        self.assertIn("non-numeric", p.stderr)

    def test_zero_baseline_rise_fails(self):
        base = {"bm_exit": {"faults": {"value": 0, "direction": "lower"}}}
        p = run_gate(base, [results_with("bm_exit", faults=3)])
        self.assertEqual(p.returncode, 1)
        self.assertIn("zero baseline", p.stderr)

    def test_zero_baseline_zero_passes(self):
        base = {"bm_exit": {"faults": {"value": 0, "direction": "lower"}}}
        p = run_gate(base, [results_with("bm_exit", faults=0)])
        self.assertEqual(p.returncode, 0, p.stderr)

    def test_malformed_results_is_usage_error(self):
        p = run_gate(BASELINE, ["{not json"])
        self.assertEqual(p.returncode, 2)
        self.assertIn("not valid JSON", p.stderr)

    def test_results_without_benchmarks_is_usage_error(self):
        p = run_gate(BASELINE, [{"context": {}}])
        self.assertEqual(p.returncode, 2)
        self.assertIn("'benchmarks'", p.stderr)

    def test_malformed_baseline_spec_is_usage_error(self):
        base = {"bm_exit": {"charged": {"value": 1, "direction": "sideways"}}}
        p = run_gate(base, [results_with("bm_exit", charged=1)])
        self.assertEqual(p.returncode, 2)
        self.assertIn("direction", p.stderr)

    def test_iteration_suffix_normalized(self):
        p = run_gate(BASELINE,
                     [results_with("bm_exit/iterations:50", charged=100)])
        self.assertEqual(p.returncode, 0, p.stderr)

    def test_nested_metrics_counter_passes(self):
        base = {"bm_exit": {
            "vmm.vtlb.hit_rate": {"value": 0.99, "direction": "higher"}}}
        res = results_with("bm_exit",
                           metrics={"vmm.vtlb.hit_rate": 0.991})
        p = run_gate(base, [res])
        self.assertEqual(p.returncode, 0, p.stderr)

    def test_nested_metrics_regression_fails(self):
        base = {"bm_exit": {
            "vmm.vtlb.hit_rate": {"value": 0.99, "direction": "higher"}}}
        res = results_with("bm_exit",
                           metrics={"vmm.vtlb.hit_rate": 0.5})
        p = run_gate(base, [res])
        self.assertEqual(p.returncode, 1)
        self.assertIn("vmm.vtlb.hit_rate", p.stderr)

    def test_flat_counter_shadows_nested_metrics(self):
        # A flat field with the gated name wins over the nested dict.
        res = results_with("bm_exit", charged=110,
                           metrics={"charged": 9999})
        p = run_gate(BASELINE, [res])
        self.assertEqual(p.returncode, 0, p.stderr)

    def test_missing_from_both_flat_and_nested_fails(self):
        res = results_with("bm_exit", metrics={"other": 1})
        p = run_gate(BASELINE, [res])
        self.assertEqual(p.returncode, 1)
        self.assertIn("counter missing", p.stderr)


if __name__ == "__main__":
    unittest.main()

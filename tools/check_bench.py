#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares google-benchmark JSON output against a checked-in baseline of
*simulated* counters (vTLB hit rate, per-exit cycle charge, checkpoint
overhead). The counters are deterministic functions of the simulated
machine, not wall-clock timings, so exact values are reproducible across
hosts and any drift is a real behavioural change.

Usage:
    check_bench.py --baseline tools/bench_baseline.json out1.json [out2.json ...]

Exits non-zero if any gated counter regresses by more than --threshold
(default 25%) relative to its baseline, in its bad direction ("higher" means
higher-is-better). Improvements and missing benchmarks in the baseline are
ignored; a baselined benchmark missing from every results file is an error
(the gate must not silently stop gating).
"""

import argparse
import json
import sys


def normalize(name: str) -> str:
    """Strips the /iterations:N suffix google-benchmark appends."""
    parts = [p for p in name.split("/") if not p.startswith("iterations:")]
    return "/".join(parts)


def load_results(paths):
    results = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for bench in data.get("benchmarks", []):
            results[normalize(bench["name"])] = bench
    return results


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="fractional regression allowed (default 0.25)")
    ap.add_argument("results", nargs="+",
                    help="google-benchmark --benchmark_format=json outputs")
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    results = load_results(args.results)

    failures = []
    checked = 0
    for bench_name, counters in baseline.items():
        bench = results.get(bench_name)
        if bench is None:
            failures.append(f"{bench_name}: missing from results")
            continue
        for counter, spec in counters.items():
            base = spec["value"]
            higher_is_better = spec["direction"] == "higher"
            cur = bench.get(counter)
            if cur is None:
                failures.append(f"{bench_name}.{counter}: counter missing")
                continue
            checked += 1
            if base == 0:
                continue
            delta = (base - cur) / abs(base) if higher_is_better \
                else (cur - base) / abs(base)
            status = "FAIL" if delta > args.threshold else "ok"
            print(f"[{status}] {bench_name}.{counter}: "
                  f"baseline={base:.6g} current={cur:.6g} "
                  f"regression={delta * 100:+.1f}% "
                  f"({'higher' if higher_is_better else 'lower'} is better)")
            if delta > args.threshold:
                failures.append(
                    f"{bench_name}.{counter}: {delta * 100:+.1f}% "
                    f"(limit {args.threshold * 100:.0f}%)")

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    if checked == 0:
        print("no counters checked — baseline/results mismatch",
              file=sys.stderr)
        return 1
    print(f"\nall {checked} gated counters within "
          f"{args.threshold * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares google-benchmark JSON output against a checked-in baseline of
*simulated* counters (vTLB hit rate, per-exit cycle charge, checkpoint
overhead). The counters are deterministic functions of the simulated
machine, not wall-clock timings, so exact values are reproducible across
hosts and any drift is a real behavioural change.

Usage:
    check_bench.py --baseline tools/bench_baseline.json out1.json [out2.json ...]

Exits non-zero if any gated counter regresses by more than --threshold
(default 25%) relative to its baseline, in its bad direction ("higher" means
higher-is-better). Improvements and missing benchmarks in the baseline are
ignored; a baselined benchmark or counter missing from every results file is
an error (the gate must not silently stop gating), and so is a baseline or
results file that cannot be read or parsed (exit code 2).
"""

import argparse
import json
import sys


def normalize(name: str) -> str:
    """Strips the /iterations:N suffix google-benchmark appends."""
    parts = [p for p in name.split("/") if not p.startswith("iterations:")]
    return "/".join(parts)


def die(msg):
    print(f"check_bench: {msg}", file=sys.stderr)
    sys.exit(2)


def load_json(path, what):
    """Loads a JSON file, exiting with a clear message instead of a
    traceback when it is unreadable or malformed."""
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        die(f"cannot read {what} {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        die(f"{what} {path} is not valid JSON: {e}")


def load_results(paths):
    results = {}
    for path in paths:
        data = load_json(path, "results file")
        benchmarks = data.get("benchmarks")
        if not isinstance(benchmarks, list):
            die(f"results file {path} has no 'benchmarks' array; pass "
                "--benchmark_format=json output")
        for bench in benchmarks:
            if "name" not in bench:
                die(f"results file {path} has a benchmark entry without "
                    "a 'name'")
            results[normalize(bench["name"])] = bench
    return results


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="fractional regression allowed (default 0.25)")
    ap.add_argument("results", nargs="+",
                    help="google-benchmark --benchmark_format=json outputs")
    args = ap.parse_args()

    baseline = load_json(args.baseline, "baseline")
    results = load_results(args.results)

    failures = []
    checked = 0
    for bench_name, counters in baseline.items():
        bench = results.get(bench_name)
        if bench is None:
            failures.append(f"{bench_name}: missing from results")
            continue
        for counter, spec in counters.items():
            if not isinstance(spec, dict) or "value" not in spec \
                    or spec.get("direction") not in ("higher", "lower"):
                die(f"baseline entry {bench_name}.{counter} needs a numeric "
                    "'value' and a 'direction' of 'higher' or 'lower'")
            base = spec["value"]
            higher_is_better = spec["direction"] == "higher"
            cur = bench.get(counter)
            if cur is None:
                # Dotted registry metrics (vmm.vtlb.hit_rate, ...) live in a
                # nested "metrics" object in hand-rolled bench JSON; flat
                # google-benchmark counters take precedence.
                metrics = bench.get("metrics")
                if isinstance(metrics, dict):
                    cur = metrics.get(counter)
            if cur is None:
                failures.append(f"{bench_name}.{counter}: counter missing")
                continue
            if not isinstance(cur, (int, float)):
                failures.append(f"{bench_name}.{counter}: non-numeric value "
                                f"{cur!r}")
                continue
            checked += 1
            if base == 0:
                # No relative delta exists. A zero baseline can only regress
                # in the lower-is-better direction (counters are >= 0).
                bad = cur > 0 and not higher_is_better
                status = "FAIL" if bad else "ok"
                print(f"[{status}] {bench_name}.{counter}: "
                      f"baseline=0 current={cur:.6g} "
                      f"({'higher' if higher_is_better else 'lower'} "
                      "is better)")
                if bad:
                    failures.append(
                        f"{bench_name}.{counter}: rose from a zero baseline "
                        f"to {cur:.6g}")
                continue
            delta = (base - cur) / abs(base) if higher_is_better \
                else (cur - base) / abs(base)
            status = "FAIL" if delta > args.threshold else "ok"
            print(f"[{status}] {bench_name}.{counter}: "
                  f"baseline={base:.6g} current={cur:.6g} "
                  f"regression={delta * 100:+.1f}% "
                  f"({'higher' if higher_is_better else 'lower'} is better)")
            if delta > args.threshold:
                failures.append(
                    f"{bench_name}.{counter}: {delta * 100:+.1f}% "
                    f"(limit {args.threshold * 100:.0f}%)")

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    if checked == 0:
        print("no counters checked — baseline/results mismatch",
              file=sys.stderr)
        return 1
    print(f"\nall {checked} gated counters within "
          f"{args.threshold * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Validator for the flight recorder's Chrome trace-event (catapult) JSON.

Checks the structural rules Perfetto / chrome://tracing rely on:

  * top level is an object with a "traceEvents" array,
  * every event has a "ph" from the supported set and a "name",
  * every non-metadata event has numeric "ts" >= 0, "pid" and "tid",
  * async events ("b"/"e"/"n") carry an "id"; each "e" closes a prior "b"
    with the same (cat, id), each "b" is closed by the end of the stream,
    and "n" instants land inside their span's lifetime,
  * counter events ("C") carry a non-empty "args" object of numeric values,
  * complete events ("X") carry a numeric "dur" >= 0,
  * flow events ("s"/"t"/"f") carry an "id"; every "t"/"f" continues a
    prior "s" with the same (cat, id) and every flow is terminated by an
    "f" before the end of the stream (these may cross (pid, tid) tracks —
    that is their purpose),
  * per (pid, tid), timestamps are monotonically non-decreasing.

Usage:
    check_trace_json.py trace.json [trace2.json ...]
    check_trace_json.py --run <flight_dump_demo> <out_dir>
    check_trace_json.py --run-fleet <fleet_flight_demo> <out_dir>
    check_trace_json.py --dir <dump_dir>

--run executes the demo binary (passing out_dir), parses the
"summary=<path>" / "trace=<path>" lines it prints, validates the trace file
and additionally requires the summary to be valid JSON with a "metrics"
object.

--run-fleet executes the fleet demo binary (passing out_dir), parses the
"trace=<path>" line it prints and validates the merged fleet Perfetto
export with extra shape requirements: at least two per-machine pids, at
least one counter ("C") track and at least one flow chain ("s").

--dir validates a multi-machine dump directory (a fleet or multiverse run
where every machine's FlightRecorder writes into one place). Dump files are
named <prefix>-m<machine>-<seq>-summary.json / -trace.json; the mode checks
that every dump stem has BOTH halves (a missing twin means a torn dump),
that every file validates individually, and that (prefix, machine, seq)
never collides — the exact regression the machine-id + sequence filename
scheme exists to prevent.

Exit code 0 when everything validates, 1 on violations, 2 on I/O or usage
errors.
"""

import json
import os
import re
import subprocess
import sys

DUMP_RE = re.compile(r"^(?P<prefix>.+)-m(?P<machine>\d+)-(?P<seq>\d+)"
                     r"-(?P<half>summary|trace)\.json$")

SUPPORTED_PH = {"B", "E", "X", "i", "I", "M", "b", "e", "n", "C",
                "s", "t", "f"}


def die(msg):
    print(f"check_trace_json: {msg}", file=sys.stderr)
    sys.exit(2)


def validate_trace(path, stats=None):
    """Returns a list of violation strings (empty when the file is valid).

    When `stats` is a dict, fills it with shape counters the fleet mode
    gates on: "pids" (set of non-metadata pids), "counters" (C events),
    "flows" (s events)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        die(f"cannot read {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        return [f"{path}: not valid JSON: {e}"]

    errors = []
    if not isinstance(doc, dict) or not isinstance(
            doc.get("traceEvents"), list):
        return [f"{path}: top level must be an object with a "
                "'traceEvents' array"]

    if stats is None:
        stats = {}
    stats.setdefault("pids", set())
    stats.setdefault("counters", 0)
    stats.setdefault("flows", 0)

    open_spans = {}   # (cat, id) -> begin ts
    open_flows = {}   # (cat, id) -> ts of the last s/t
    last_ts = {}      # (pid, tid) -> ts
    events = 0
    for idx, ev in enumerate(doc["traceEvents"]):
        where = f"{path}: event {idx}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in SUPPORTED_PH:
            errors.append(f"{where}: unsupported ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing 'name'")
        if ph == "M":
            continue  # metadata has no timestamp
        events += 1
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: 'ts' must be a number >= 0, got {ts!r}")
            continue
        if not isinstance(ev.get("pid"), int) or \
                not isinstance(ev.get("tid"), int):
            errors.append(f"{where}: missing integer 'pid'/'tid'")
        thread = (ev.get("pid"), ev.get("tid"))
        if thread in last_ts and ts < last_ts[thread]:
            errors.append(f"{where}: ts {ts} goes backwards "
                          f"(prev {last_ts[thread]}) on {thread}")
        last_ts[thread] = ts
        if isinstance(ev.get("pid"), int):
            stats["pids"].add(ev["pid"])

        if ph == "C":
            stats["counters"] += 1
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                errors.append(f"{where}: counter without a non-empty "
                              "'args' object")
            elif not all(isinstance(v, (int, float))
                         for v in args.values()):
                errors.append(f"{where}: counter 'args' values must all "
                              "be numeric")
        elif ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: 'X' needs numeric 'dur' >= 0, "
                              f"got {dur!r}")
        elif ph in ("s", "t", "f"):
            key = (ev.get("cat"), ev.get("id"))
            if ev.get("id") is None:
                errors.append(f"{where}: flow '{ph}' without an 'id'")
                continue
            if ph == "s":
                stats["flows"] += 1
                if key in open_flows:
                    errors.append(f"{where}: flow {key} started twice")
                open_flows[key] = ts
            else:
                if key not in open_flows:
                    errors.append(f"{where}: '{ph}' for flow {key} with "
                                  "no open 's'")
                elif ph == "f":
                    del open_flows[key]
                else:
                    open_flows[key] = ts

        if ph in ("b", "e", "n"):
            key = (ev.get("cat"), ev.get("id"))
            if ev.get("id") is None:
                errors.append(f"{where}: async '{ph}' without an 'id'")
                continue
            if ph == "b":
                if key in open_spans:
                    errors.append(f"{where}: span {key} begun twice")
                open_spans[key] = ts
            elif ph == "e":
                if key not in open_spans:
                    errors.append(f"{where}: 'e' for span {key} with no "
                                  "open 'b'")
                else:
                    del open_spans[key]
            else:  # "n"
                if key not in open_spans:
                    errors.append(f"{where}: 'n' instant for span {key} "
                                  "outside its lifetime")
        elif ph == "i" and ev.get("s") not in (None, "t", "p", "g"):
            errors.append(f"{where}: instant scope {ev['s']!r} invalid")

    for key, ts in open_spans.items():
        errors.append(f"{path}: span {key} (begun at ts {ts}) never closed")
    for key, ts in open_flows.items():
        errors.append(f"{path}: flow {key} (last step at ts {ts}) never "
                      "terminated by an 'f'")
    if events == 0:
        errors.append(f"{path}: no timestamped events")
    return errors


def validate_summary(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        die(f"cannot read {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        return [f"{path}: not valid JSON: {e}"]
    errors = []
    for field in ("reason", "cycles", "exit_stats", "metrics"):
        if field not in doc:
            errors.append(f"{path}: summary missing '{field}'")
    if not isinstance(doc.get("metrics"), dict):
        errors.append(f"{path}: 'metrics' must be an object")
    return errors


def run_demo(binary, out_dir):
    """Runs flight_dump_demo and returns (summary_path, trace_path)."""
    try:
        proc = subprocess.run([binary, out_dir], capture_output=True,
                              text=True, timeout=300)
    except OSError as e:
        die(f"cannot run {binary}: {e.strerror}")
    except subprocess.TimeoutExpired:
        die(f"{binary} timed out")
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        die(f"{binary} exited {proc.returncode}")
    summary = trace = None
    for line in proc.stdout.splitlines():
        if line.startswith("summary="):
            summary = line[len("summary="):]
        elif line.startswith("trace="):
            trace = line[len("trace="):]
    if not summary or not trace:
        die(f"{binary} did not print summary=/trace= paths")
    return summary, trace


def run_fleet_demo(binary, out_dir):
    """Runs fleet_flight_demo and returns the merged trace path."""
    try:
        proc = subprocess.run([binary, out_dir], capture_output=True,
                              text=True, timeout=600)
    except OSError as e:
        die(f"cannot run {binary}: {e.strerror}")
    except subprocess.TimeoutExpired:
        die(f"{binary} timed out")
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        die(f"{binary} exited {proc.returncode}")
    for line in proc.stdout.splitlines():
        if line.startswith("trace="):
            return line[len("trace="):]
    die(f"{binary} did not print a trace= path")


def validate_fleet_trace(path):
    """Validates a merged fleet Perfetto export: structurally valid, plus
    at least two per-machine pids (< 1000), one counter track and one flow
    chain."""
    stats = {}
    errors = validate_trace(path, stats)
    machine_pids = {p for p in stats["pids"] if p < 1000}
    if len(machine_pids) < 2:
        errors.append(f"{path}: expected >= 2 per-machine pids, "
                      f"got {sorted(machine_pids)}")
    if stats["counters"] < 1:
        errors.append(f"{path}: expected at least one counter ('C') event")
    if stats["flows"] < 1:
        errors.append(f"{path}: expected at least one flow chain ('s')")
    if not errors:
        print(f"{path}: {len(machine_pids)} machine track(s), "
              f"{stats['counters']} counter event(s), "
              f"{stats['flows']} flow chain(s)")
    return errors


def validate_dump_dir(dump_dir):
    """Validates every multi-machine flight-recorder dump in a directory.

    Returns (errors, checked_paths). Files not matching the dump naming
    scheme are ignored (the directory may hold bench JSON etc.)."""
    try:
        names = sorted(os.listdir(dump_dir))
    except OSError as e:
        die(f"cannot list {dump_dir}: {e.strerror}")

    errors = []
    checked = []
    halves = {}  # (prefix, machine, seq) -> set of halves seen
    machines = set()
    for name in names:
        m = DUMP_RE.match(name)
        if not m:
            continue
        key = (m.group("prefix"), int(m.group("machine")),
               int(m.group("seq")))
        seen = halves.setdefault(key, set())
        if m.group("half") in seen:
            # One (prefix, machine, seq) stem must map to exactly one dump;
            # the filesystem makes literal collisions overwrite silently, so
            # this only fires on case-mangled duplicates — still a bug.
            errors.append(f"{dump_dir}/{name}: duplicate "
                          f"{m.group('half')} for stem {key}")
        seen.add(m.group("half"))
        machines.add(key[1])

        path = os.path.join(dump_dir, name)
        checked.append(path)
        if m.group("half") == "trace":
            errors += validate_trace(path)
        else:
            errors += validate_summary(path)

    for key, seen in sorted(halves.items()):
        for half in ("summary", "trace"):
            if half not in seen:
                errors.append(f"{dump_dir}: dump stem {key} is torn — "
                              f"missing its {half} half")
    if not halves:
        errors.append(f"{dump_dir}: no flight-recorder dumps found "
                      "(expected <prefix>-m<machine>-<seq>-*.json)")
    else:
        print(f"{dump_dir}: {len(halves)} dump(s) across "
              f"{len(machines)} machine(s)")
    return errors, checked


def main():
    args = sys.argv[1:]
    if not args:
        die("usage: check_trace_json.py <trace.json ...> | "
            "--run <demo> <out_dir> | --run-fleet <demo> <out_dir> | "
            "--dir <dump_dir>")

    errors = []
    if args[0] == "--run":
        if len(args) != 3:
            die("--run needs <flight_dump_demo> <out_dir>")
        summary, trace = run_demo(args[1], args[2])
        errors += validate_summary(summary)
        errors += validate_trace(trace)
        checked = [trace, summary]
    elif args[0] == "--run-fleet":
        if len(args) != 3:
            die("--run-fleet needs <fleet_flight_demo> <out_dir>")
        trace = run_fleet_demo(args[1], args[2])
        errors += validate_fleet_trace(trace)
        checked = [trace]
    elif args[0] == "--dir":
        if len(args) != 2:
            die("--dir needs <dump_dir>")
        errors, checked = validate_dump_dir(args[1])
    else:
        checked = args
        for path in args:
            errors += validate_trace(path)

    if errors:
        print(f"{len(errors)} violation(s):", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"all {len(checked)} file(s) are valid trace-event JSON")
    return 0


if __name__ == "__main__":
    sys.exit(main())

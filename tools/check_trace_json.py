#!/usr/bin/env python3
"""Validator for the flight recorder's Chrome trace-event (catapult) JSON.

Checks the structural rules Perfetto / chrome://tracing rely on:

  * top level is an object with a "traceEvents" array,
  * every event has a "ph" from the supported set and a "name",
  * every non-metadata event has numeric "ts" >= 0, "pid" and "tid",
  * async events ("b"/"e"/"n") carry an "id"; each "e" closes a prior "b"
    with the same (cat, id), each "b" is closed by the end of the stream,
    and "n" instants land inside their span's lifetime,
  * per (pid, tid), timestamps are monotonically non-decreasing.

Usage:
    check_trace_json.py trace.json [trace2.json ...]
    check_trace_json.py --run <flight_dump_demo> <out_dir>

--run executes the demo binary (passing out_dir), parses the
"summary=<path>" / "trace=<path>" lines it prints, validates the trace file
and additionally requires the summary to be valid JSON with a "metrics"
object. Exit code 0 when everything validates, 1 on violations, 2 on I/O
or usage errors.
"""

import json
import subprocess
import sys

SUPPORTED_PH = {"B", "E", "X", "i", "I", "M", "b", "e", "n", "C"}


def die(msg):
    print(f"check_trace_json: {msg}", file=sys.stderr)
    sys.exit(2)


def validate_trace(path):
    """Returns a list of violation strings (empty when the file is valid)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        die(f"cannot read {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        return [f"{path}: not valid JSON: {e}"]

    errors = []
    if not isinstance(doc, dict) or not isinstance(
            doc.get("traceEvents"), list):
        return [f"{path}: top level must be an object with a "
                "'traceEvents' array"]

    open_spans = {}   # (cat, id) -> begin ts
    last_ts = {}      # (pid, tid) -> ts
    events = 0
    for idx, ev in enumerate(doc["traceEvents"]):
        where = f"{path}: event {idx}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in SUPPORTED_PH:
            errors.append(f"{where}: unsupported ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing 'name'")
        if ph == "M":
            continue  # metadata has no timestamp
        events += 1
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: 'ts' must be a number >= 0, got {ts!r}")
            continue
        if not isinstance(ev.get("pid"), int) or \
                not isinstance(ev.get("tid"), int):
            errors.append(f"{where}: missing integer 'pid'/'tid'")
        thread = (ev.get("pid"), ev.get("tid"))
        if thread in last_ts and ts < last_ts[thread]:
            errors.append(f"{where}: ts {ts} goes backwards "
                          f"(prev {last_ts[thread]}) on {thread}")
        last_ts[thread] = ts

        if ph in ("b", "e", "n"):
            key = (ev.get("cat"), ev.get("id"))
            if ev.get("id") is None:
                errors.append(f"{where}: async '{ph}' without an 'id'")
                continue
            if ph == "b":
                if key in open_spans:
                    errors.append(f"{where}: span {key} begun twice")
                open_spans[key] = ts
            elif ph == "e":
                if key not in open_spans:
                    errors.append(f"{where}: 'e' for span {key} with no "
                                  "open 'b'")
                else:
                    del open_spans[key]
            else:  # "n"
                if key not in open_spans:
                    errors.append(f"{where}: 'n' instant for span {key} "
                                  "outside its lifetime")
        elif ph == "i" and ev.get("s") not in (None, "t", "p", "g"):
            errors.append(f"{where}: instant scope {ev['s']!r} invalid")

    for key, ts in open_spans.items():
        errors.append(f"{path}: span {key} (begun at ts {ts}) never closed")
    if events == 0:
        errors.append(f"{path}: no timestamped events")
    return errors


def validate_summary(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        die(f"cannot read {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        return [f"{path}: not valid JSON: {e}"]
    errors = []
    for field in ("reason", "cycles", "exit_stats", "metrics"):
        if field not in doc:
            errors.append(f"{path}: summary missing '{field}'")
    if not isinstance(doc.get("metrics"), dict):
        errors.append(f"{path}: 'metrics' must be an object")
    return errors


def run_demo(binary, out_dir):
    """Runs flight_dump_demo and returns (summary_path, trace_path)."""
    try:
        proc = subprocess.run([binary, out_dir], capture_output=True,
                              text=True, timeout=300)
    except OSError as e:
        die(f"cannot run {binary}: {e.strerror}")
    except subprocess.TimeoutExpired:
        die(f"{binary} timed out")
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        die(f"{binary} exited {proc.returncode}")
    summary = trace = None
    for line in proc.stdout.splitlines():
        if line.startswith("summary="):
            summary = line[len("summary="):]
        elif line.startswith("trace="):
            trace = line[len("trace="):]
    if not summary or not trace:
        die(f"{binary} did not print summary=/trace= paths")
    return summary, trace


def main():
    args = sys.argv[1:]
    if not args:
        die("usage: check_trace_json.py <trace.json ...> | "
            "--run <demo> <out_dir>")

    errors = []
    if args[0] == "--run":
        if len(args) != 3:
            die("--run needs <flight_dump_demo> <out_dir>")
        summary, trace = run_demo(args[1], args[2])
        errors += validate_summary(summary)
        errors += validate_trace(trace)
        checked = [trace, summary]
    else:
        checked = args
        for path in args:
            errors += validate_trace(path)

    if errors:
        print(f"{len(errors)} violation(s):", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"all {len(checked)} file(s) are valid trace-event JSON")
    return 0


if __name__ == "__main__":
    sys.exit(main())
